#pragma once
/// \file flat_map.hpp
/// Cache-friendly sorted containers for small cardinalities.
///
/// Per-node protocol state (cluster keys, neighbor-cluster contexts,
/// per-interest diffusion entries, nonce windows) holds roughly
/// *density* entries — 8 to 20 — but was stored in `std::map` /
/// `std::unordered_map`, paying a heap node and two-plus cache misses
/// per entry.  At 100k nodes those per-entry nodes dominate the
/// footprint.  FlatMap/FlatSet store entries contiguously in a sorted
/// SmallVec with inline capacity, so the common case is zero heap
/// allocations and one cache line per lookup; insert is O(n) moves,
/// which is cheaper than a rebalance for n this small.
///
/// Iteration order is ascending by key — the same order `std::map`
/// gave — so swapping `std::map` for FlatMap is behavior-preserving
/// even where iteration order feeds protocol decisions.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace ldke::support {

/// Vector with inline storage for the first \p N elements; spills to the
/// heap beyond that.  N = 0 is a plain heap vector (no inline buffer).
/// Requires T move-constructible and move-assignable.
template <typename T, std::size_t N>
class SmallVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept : data_(inline_data()), capacity_(N) {}

  SmallVec(const SmallVec& other) : SmallVec() {
    reserve(other.size_);
    std::uninitialized_copy(other.begin(), other.end(), data_);
    size_ = other.size_;
  }

  SmallVec(SmallVec&& other) noexcept : SmallVec() {
    if (other.on_heap()) {
      // Steal the heap buffer wholesale.
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      std::uninitialized_move(other.begin(), other.end(), data_);
      size_ = other.size_;
      other.destroy_all();
    }
  }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      destroy_all();
      reserve(other.size_);
      std::uninitialized_copy(other.begin(), other.end(), data_);
      size_ = other.size_;
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      destroy_all();
      if (other.on_heap()) {
        release_heap();
        data_ = other.data_;
        capacity_ = other.capacity_;
        size_ = other.size_;
        other.data_ = other.inline_data();
        other.capacity_ = N;
        other.size_ = 0;
      } else {
        std::uninitialized_move(other.begin(), other.end(), data_);
        size_ = other.size_;
        other.destroy_all();
      }
    }
    return *this;
  }

  ~SmallVec() {
    destroy_all();
    release_heap();
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] T& back() noexcept { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return data_[size_ - 1]; }

  void reserve(std::size_t want) {
    if (want <= capacity_) return;
    grow_to(want);
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow_to(size_ + 1);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  void pop_back() noexcept {
    --size_;
    data_[size_].~T();
  }

  /// Inserts \p v before \p pos, shifting the tail right.  Returns an
  /// iterator to the inserted element (iterators are invalidated).
  template <typename U>
  iterator insert(const_iterator pos, U&& v) {
    const std::size_t idx = static_cast<std::size_t>(pos - data_);
    if (size_ == capacity_) grow_to(size_ + 1);
    if (idx == size_) {
      ::new (static_cast<void*>(data_ + size_)) T(std::forward<U>(v));
    } else {
      // Move-construct the new last element, shift the rest, assign.
      ::new (static_cast<void*>(data_ + size_)) T(std::move(data_[size_ - 1]));
      std::move_backward(data_ + idx, data_ + size_ - 1, data_ + size_);
      data_[idx] = T(std::forward<U>(v));
    }
    ++size_;
    return data_ + idx;
  }

  iterator erase(const_iterator pos) noexcept {
    const std::size_t idx = static_cast<std::size_t>(pos - data_);
    std::move(data_ + idx + 1, data_ + size_, data_ + idx);
    pop_back();
    return data_ + idx;
  }

  void clear() noexcept { destroy_all(); }

 private:
  // Inline buffer; empty when N == 0 so SmallVec<T, 0> carries no slack.
  struct Empty {};
  struct Buffer {
    alignas(T) std::byte raw[sizeof(T) * (N ? N : 1)];
  };
  using InlineStore = std::conditional_t<N == 0, Empty, Buffer>;

  [[nodiscard]] T* inline_data() noexcept {
    if constexpr (N == 0) {
      return nullptr;
    } else {
      return reinterpret_cast<T*>(inline_store_.raw);
    }
  }
  [[nodiscard]] bool on_heap() const noexcept { return capacity_ > N; }

  void grow_to(std::size_t want) {
    std::size_t cap = capacity_ ? capacity_ * 2 : 4;
    if (cap < want) cap = want;
    T* fresh = std::allocator<T>{}.allocate(cap);
    std::uninitialized_move(begin(), end(), fresh);
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    release_heap();
    data_ = fresh;
    capacity_ = cap;
  }

  void destroy_all() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void release_heap() noexcept {
    if (on_heap()) {
      std::allocator<T>{}.deallocate(data_, capacity_);
      data_ = inline_data();
      capacity_ = N;
    }
  }

  T* data_;
  std::size_t size_ = 0;
  std::size_t capacity_;
  [[no_unique_address]] InlineStore inline_store_;
};

/// Sorted associative map over a SmallVec.  Drop-in for the subset of the
/// `std::map` interface the protocol uses; value_type is std::pair<K, V>
/// (not pair<const K, V>), which structured bindings handle identically.
template <typename K, typename V, std::size_t N>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename SmallVec<value_type, N>::iterator;
  using const_iterator = typename SmallVec<value_type, N>::const_iterator;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] iterator begin() noexcept { return entries_.begin(); }
  [[nodiscard]] iterator end() noexcept { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept {
    return entries_.begin();
  }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }

  [[nodiscard]] iterator lower_bound(const K& key) noexcept {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  [[nodiscard]] const_iterator lower_bound(const K& key) const noexcept {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  [[nodiscard]] iterator find(const K& key) noexcept {
    auto it = lower_bound(key);
    return (it != end() && it->first == key) ? it : end();
  }
  [[nodiscard]] const_iterator find(const K& key) const noexcept {
    auto it = lower_bound(key);
    return (it != end() && it->first == key) ? it : end();
  }
  [[nodiscard]] bool contains(const K& key) const noexcept {
    return find(key) != end();
  }
  [[nodiscard]] std::size_t count(const K& key) const noexcept {
    return contains(key) ? 1 : 0;
  }

  [[nodiscard]] V& at(const K& key) {
    auto it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }
  [[nodiscard]] const V& at(const K& key) const {
    auto it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }

  /// Inserts a default-constructed value if absent (std::map semantics).
  V& operator[](const K& key) {
    return try_emplace(key).first->second;
  }

  /// Inserts {key, V(args...)} if absent; never overwrites.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    auto it = lower_bound(key);
    if (it != end() && it->first == key) return {it, false};
    it = entries_.insert(it, value_type(std::piecewise_construct,
                                        std::forward_as_tuple(key),
                                        std::forward_as_tuple(
                                            std::forward<Args>(args)...)));
    return {it, true};
  }

  /// Inserts or overwrites.
  template <typename U>
  iterator insert_or_assign(const K& key, U&& value) {
    auto it = lower_bound(key);
    if (it != end() && it->first == key) {
      it->second = std::forward<U>(value);
      return it;
    }
    return entries_.insert(it, value_type(key, std::forward<U>(value)));
  }

  std::size_t erase(const K& key) noexcept {
    auto it = find(key);
    if (it == end()) return 0;
    entries_.erase(it);
    return 1;
  }
  iterator erase(const_iterator pos) noexcept { return entries_.erase(pos); }

  void clear() noexcept { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

 private:
  SmallVec<value_type, N> entries_;  // sorted ascending by .first
};

/// Sorted set over a SmallVec; same rationale as FlatMap.
template <typename K, std::size_t N>
class FlatSet {
 public:
  using iterator = typename SmallVec<K, N>::iterator;
  using const_iterator = typename SmallVec<K, N>::const_iterator;

  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] bool empty() const noexcept { return keys_.empty(); }

  [[nodiscard]] iterator begin() noexcept { return keys_.begin(); }
  [[nodiscard]] iterator end() noexcept { return keys_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept { return keys_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return keys_.end(); }

  [[nodiscard]] bool contains(const K& key) const noexcept {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    return it != keys_.end() && *it == key;
  }
  [[nodiscard]] std::size_t count(const K& key) const noexcept {
    return contains(key) ? 1 : 0;
  }

  std::pair<iterator, bool> insert(const K& key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && *it == key) return {it, false};
    return {keys_.insert(it, key), true};
  }

  std::size_t erase(const K& key) noexcept {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) return 0;
    keys_.erase(it);
    return 1;
  }

  void clear() noexcept { keys_.clear(); }
  void reserve(std::size_t n) { keys_.reserve(n); }

 private:
  SmallVec<K, N> keys_;  // sorted ascending
};

}  // namespace ldke::support
