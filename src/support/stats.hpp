#pragma once
/// \file stats.hpp
/// Streaming statistics used by the experiment harness to aggregate
/// per-trial metrics into mean / stddev / standard-error summaries.

#include <cstddef>
#include <span>
#include <string>

namespace ldke::support {

/// Welford online accumulator: numerically stable mean/variance without
/// storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction of per-thread stats).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// "mean ± stderr" with the given precision, for report tables.
  [[nodiscard]] std::string summary(int precision = 3) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a span (0 for empty input).
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Population-style percentile via linear interpolation, p in [0, 100].
/// Requires xs sorted ascending and non-empty.
[[nodiscard]] double percentile_sorted(std::span<const double> xs,
                                       double p) noexcept;

}  // namespace ldke::support
