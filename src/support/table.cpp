#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace ldke::support {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::add_row_values(const std::vector<double>& values,
                               int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << render(); }

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace ldke::support
