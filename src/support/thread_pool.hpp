#pragma once
/// \file thread_pool.hpp
/// Fixed-size thread pool used to run independent simulation trials in
/// parallel (one deterministic single-threaded trial per task).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ldke::support {

class ThreadPool {
 public:
  /// \p threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks (including those submitted while
  /// waiting) have finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, count) across the pool and waits.
  /// Exceptions escaping fn terminate (tasks must handle their errors).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace ldke::support
