#include "sim/scheduler.hpp"

#include <cassert>
#include <memory>

namespace ldke::sim {

EventId Scheduler::schedule(SimTime when, std::function<void()> action) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, id,
                   std::make_shared<std::function<void()>>(std::move(action))});
  live_ids_.insert(id);
  ++live_;
  return id;
}

bool Scheduler::cancel(EventId id) {
  if (live_ids_.erase(id) == 0) return false;  // already run or cancelled
  cancelled_.insert(id);
  --live_;
  return true;
}

void Scheduler::skip_cancelled() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime Scheduler::next_time() {
  skip_cancelled();
  assert(!heap_.empty());
  return heap_.top().when;
}

SimTime Scheduler::run_next() {
  skip_cancelled();
  assert(!heap_.empty());
  Entry entry = heap_.top();
  heap_.pop();
  live_ids_.erase(entry.id);
  --live_;
  (*entry.action)();
  return entry.when;
}

}  // namespace ldke::sim
