#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace ldke::sim {

EventId Scheduler::schedule(SimTime when, EventFn action) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.action = std::move(action);
  s.live = true;
  const EventId id =
      (static_cast<EventId>(s.generation) << 32) | (slot + 1ULL);
  heap_.push(Entry{when, next_seq_++, id});
  ++live_;
  if (live_ > high_water_) high_water_ = live_;
  return id;
}

bool Scheduler::is_live(EventId id) const noexcept {
  if (id == kInvalidEventId) return false;
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  return s.live && s.generation == generation_of(id);
}

void Scheduler::retire(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.action = nullptr;
  s.live = false;
  ++s.generation;  // invalidates every outstanding id for this slot
  free_slots_.push_back(slot);
  --live_;
}

bool Scheduler::cancel(EventId id) {
  if (!is_live(id)) return false;  // already run or cancelled
  retire(slot_of(id));
  // The heap entry stays behind as a tombstone; skip_dead pops it once
  // it surfaces.
  return true;
}

void Scheduler::skip_dead() {
  while (!heap_.empty() && !is_live(heap_.top().id)) heap_.pop();
}

SimTime Scheduler::next_time() {
  skip_dead();
  assert(!heap_.empty());
  return heap_.top().when;
}

SimTime Scheduler::run_next() {
  skip_dead();
  assert(!heap_.empty());
  const Entry entry = heap_.top();
  heap_.pop();
  const std::uint32_t slot = slot_of(entry.id);
  // Move the callable out and finish slab bookkeeping BEFORE invoking:
  // the action may schedule new events (possibly reusing this slot) or
  // cancel others.
  EventFn action = std::move(slots_[slot].action);
  retire(slot);
  action();
  return entry.when;
}

}  // namespace ldke::sim
