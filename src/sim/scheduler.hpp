#pragma once
/// \file scheduler.hpp
/// Pending-event set: a binary heap of (time, sequence) ordered events.
/// Equal-time events run in scheduling order (stable), which keeps trials
/// bit-reproducible.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>

#include "sim/time.hpp"

namespace ldke::sim {

/// Handle that allows cancelling a scheduled event (e.g. a node cancels
/// its cluster-head timer when it joins another cluster).
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  /// Schedules \p action at absolute time \p when; returns a cancellable id.
  EventId schedule(SimTime when, std::function<void()> action);

  /// Cancels a pending event; returns false if already run/cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time();

  /// Pops and runs the earliest event; returns its time.
  /// Precondition: !empty().
  SimTime run_next();

 private:
  struct Entry {
    SimTime when;
    EventId id;
    // shared_ptr so copies made by priority_queue stay cheap to move.
    std::shared_ptr<std::function<void()>> action;

    // Min-heap on (when, id): std::priority_queue is a max-heap, so the
    // comparison is inverted.
    friend bool operator<(const Entry& a, const Entry& b) noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  void skip_cancelled();

  std::priority_queue<Entry> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_ids_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace ldke::sim
