#pragma once
/// \file scheduler.hpp
/// Pending-event set: a binary heap of (time, sequence) ordered events.
/// Equal-time events run in scheduling order (stable), which keeps trials
/// bit-reproducible.
///
/// Layout: the heap holds 24-byte POD entries; the callables live in a
/// slot slab indexed by the low half of the EventId.  The high half is a
/// per-slot generation counter, so a stale id (already run or cancelled,
/// slot since reused) is recognised without any auxiliary set.  Cancel is
/// O(1): the slot is retired and the heap entry becomes a tombstone that
/// `skip_dead` pops when it reaches the top.

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace ldke::sim {

/// Handle that allows cancelling a scheduled event (e.g. a node cancels
/// its cluster-head timer when it joins another cluster).
/// Encoded as (generation << 32) | (slot + 1), so 0 is never issued.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  /// Schedules \p action at absolute time \p when; returns a cancellable id.
  /// EventFn keeps typical captures inline (no allocation per event).
  EventId schedule(SimTime when, EventFn action);

  /// Cancels a pending event; returns false if already run/cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }

  /// Deepest the pending set has ever been.  Tracked at schedule() time
  /// (the set is deepest right after a push), which keeps the run loop
  /// free of bookkeeping.
  [[nodiscard]] std::size_t high_water() const noexcept {
    return high_water_;
  }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time();

  /// Pops and runs the earliest event; returns its time.
  /// Precondition: !empty().
  SimTime run_next();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;  ///< global scheduling order: stable tie-break
    EventId id;

    // Min-heap on (when, seq): std::priority_queue is a max-heap, so the
    // comparison is inverted.
    friend bool operator<(const Entry& a, const Entry& b) noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    EventFn action;
    std::uint32_t generation = 0;
    bool live = false;
  };

  static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id & 0xffff'ffffU) - 1;
  }
  static constexpr std::uint32_t generation_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  [[nodiscard]] bool is_live(EventId id) const noexcept;
  /// Retires a slot after run/cancel; the next schedule() may reuse it
  /// under a bumped generation.
  void retire(std::uint32_t slot) noexcept;
  void skip_dead();

  std::priority_queue<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace ldke::sim
