#pragma once
/// \file trace.hpp
/// Per-trial event counters.  Historically this file defined a counters-
/// only TraceCounters class; the implementation moved to the unified
/// obs::MetricRegistry (counters + gauges + histograms, all with
/// interned hot-path handles) and TraceCounters is now an alias so every
/// existing call site — modules incrementing named counters, hot paths
/// bumping pre-resolved Handles — keeps compiling unchanged.

#include "obs/metrics.hpp"

namespace ldke::sim {

using TraceCounters = obs::MetricRegistry;

}  // namespace ldke::sim
