#pragma once
/// \file trace.hpp
/// Lightweight event counters attached to a trial.  Modules increment
/// named counters (e.g. "hello_sent", "mac_fail"); experiments read them
/// after the run.  A plain map keeps this dependency-free and is fast
/// enough at simulation scale.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ldke::sim {

class TraceCounters {
 public:
  void increment(std::string_view name, std::uint64_t by = 1);

  [[nodiscard]] std::uint64_t value(std::string_view name) const noexcept;

  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>&
  all() const noexcept {
    return counters_;
  }

  void clear() noexcept { counters_.clear(); }

  /// "name=value" lines, sorted by name (stable test output).
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

}  // namespace ldke::sim
