#pragma once
/// \file trace.hpp
/// Lightweight event counters attached to a trial.  Modules increment
/// named counters (e.g. "hello_sent", "mac_fail"); experiments read them
/// after the run.  A plain map keeps this dependency-free and is fast
/// enough at simulation scale — except on true per-packet hot paths,
/// where the string hash/compare per increment shows up.  Those callers
/// resolve a Handle once (handle()) and bump it through pointer
/// indirection instead.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>

namespace ldke::sim {

class TraceCounters {
 public:
  /// Pre-resolved counter slot for hot paths: increments through it skip
  /// the name lookup entirely.  Obtained from handle(); stays valid for
  /// the lifetime of the TraceCounters — clear() zeroes handle-backed
  /// slots instead of erasing them, and std::map nodes never move.
  class Handle {
   public:
    Handle() = default;

   private:
    friend class TraceCounters;
    explicit Handle(std::uint64_t* slot) noexcept : slot_(slot) {}
    std::uint64_t* slot_ = nullptr;
  };

  /// Resolves (registering if needed) the slot for \p name.
  [[nodiscard]] Handle handle(std::string_view name);

  void increment(std::string_view name, std::uint64_t by = 1);

  /// Hot-path increment: no hashing, no string compare.
  void increment(Handle h, std::uint64_t by = 1) noexcept {
    if (h.slot_ != nullptr) *h.slot_ += by;
  }

  [[nodiscard]] std::uint64_t value(std::string_view name) const noexcept;

  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>&
  all() const noexcept {
    return counters_;
  }

  /// Erases plain counters; handle-backed slots are reset to zero but
  /// stay registered (outstanding Handles must remain valid).
  void clear() noexcept;

  /// "name=value" lines, sorted by name (stable test output).
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::set<std::string, std::less<>> pinned_;  ///< names with live Handles
};

}  // namespace ldke::sim
