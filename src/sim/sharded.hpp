#pragma once
/// \file sharded.hpp
/// Conservative parallel discrete-event kernel for in-trial parallelism.
///
/// The serial event loop caps trial size: a 100k-node setup runs 3.1 s
/// on one core while the others idle.  This kernel partitions the event
/// set into spatial *lanes* (the network layer maps each node to a lane
/// by grid-cell strip; one Scheduler per lane) and runs all lanes
/// concurrently in *lookahead windows*: with W the minimum cross-lane
/// latency (smallest frame airtime plus propagation delay), every event
/// in [T, T+W) — T the global minimum pending time — can only influence
/// other lanes at or after T+W, so the lanes execute the window without
/// any synchronization and exchange the boundary-crossing ("halo")
/// events at a barrier.
///
/// Determinism is non-negotiable and comes from two disciplines:
///  - within a lane, events run in (time, lane-local sequence) order —
///    exactly the serial scheduler's discipline;
///  - halo events are merged at each barrier in canonical
///    (time, source lane, source sequence) order before being scheduled
///    into their destination lane, so the destination's tie-break order
///    is a pure function of the event set, never of thread timing.
/// An N-lane run therefore produces bit-identical per-seed setup
/// metrics to the 1-lane run (regression-tested), the same argument the
/// trial-level mutex-free merge in run_setup_point established.
///
/// The kernel is deliberately ignorant of nodes, packets and radios: it
/// deals in lanes, clocks and EventFns.  The net layer decides which
/// lane a receiver lives in and calls schedule_cross(); the embedder
/// (ProtocolRunner) supplies a LaneEnv hook that installs per-lane
/// thread context (payload arena, crypto counter sink) around window
/// execution.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "support/thread_pool.hpp"

namespace ldke::sim {

/// Lane-count / window configuration, carried by RunnerConfig.  lanes=1
/// keeps the plain serial loop — the sharded path is the same code with
/// more lanes, not a behavioral fork.
struct KernelConfig {
  /// Spatial lanes (grid-cell strips).  1 = serial; clamped to 255.
  std::size_t lanes = 1;
  /// Lookahead-window override in seconds.  0 derives the window from
  /// the channel's minimum cross-lane latency; a smaller value only adds
  /// barriers, so the override is clamped to the safe lookahead.
  double window_s = 0.0;
  /// Worker threads; 0 = min(lanes, hardware_concurrency()).
  std::size_t threads = 0;
};

/// Per-lane observability, exported into the MetricRegistry after each
/// run (windows, halo traffic, barrier stall, imbalance).
struct LaneStats {
  std::uint64_t events = 0;          ///< events executed in this lane
  std::uint64_t halo_out = 0;        ///< cross-lane events this lane emitted
  std::uint64_t halo_in = 0;         ///< cross-lane events merged into it
  std::uint64_t busy_ns = 0;         ///< wall time inside window execution
  std::uint64_t barrier_wait_ns = 0; ///< wall time idle at window barriers
  std::size_t queue_high_water = 0;  ///< deepest this lane's pending set got
};

class ShardedKernel {
 public:
  /// \p lookahead must lower-bound every cross-lane event latency: a
  /// halo scheduled from lane time t must carry a timestamp >= t +
  /// lookahead (the net layer guarantees this with min-frame airtime +
  /// propagation delay).
  ShardedKernel(std::size_t lanes, SimTime lookahead,
                support::ThreadPool& pool);

  ShardedKernel(const ShardedKernel&) = delete;
  ShardedKernel& operator=(const ShardedKernel&) = delete;

  [[nodiscard]] std::size_t lane_count() const noexcept {
    return lanes_.size();
  }
  [[nodiscard]] SimTime lookahead() const noexcept { return lookahead_; }

  // ---- lane binding ----------------------------------------------------

  /// The lane the calling thread is bound to (0 when unbound, which is
  /// also the serial default — main-thread work lands in lane 0).
  [[nodiscard]] static std::uint32_t current_lane() noexcept {
    return t_lane_;
  }
  /// True while the calling thread is executing a parallel window (as
  /// opposed to a main-thread LaneScope during serial phases).  Shared
  /// resources that are only safe serially (the trial RNG) key off this.
  [[nodiscard]] static bool in_parallel_window() noexcept {
    return t_in_window_;
  }

  /// Binds the calling thread to \p lane for the scope's lifetime, so
  /// serial phase drivers (start_all, recluster scheduling) route each
  /// node's events into its home lane.
  class LaneScope {
   public:
    LaneScope(const ShardedKernel&, std::uint32_t lane) noexcept
        : prev_(t_lane_) {
      t_lane_ = lane;
    }
    ~LaneScope() { t_lane_ = prev_; }
    LaneScope(const LaneScope&) = delete;
    LaneScope& operator=(const LaneScope&) = delete;

   private:
    std::uint32_t prev_;
  };

  // ---- scheduling (routed by the bound lane) ---------------------------

  /// Lane-local clock of the calling thread's lane; between runs every
  /// lane clock equals the committed global time.
  [[nodiscard]] SimTime now() const noexcept { return lanes_[t_lane_].now; }

  EventId schedule(SimTime when, EventFn action);
  bool cancel(EventId id);

  /// Schedules a cross-lane (halo) event.  Must satisfy the lookahead
  /// contract (\p when >= emitting lane's now + lookahead); the event is
  /// buffered in a per-lane-pair outbox and merged into \p dst_lane at
  /// the next window barrier in canonical (when, src lane, seq) order.
  void schedule_cross(std::uint32_t dst_lane, SimTime when, EventFn action);

  // ---- run loop --------------------------------------------------------

  /// Wraps per-lane window execution on the worker thread — the embedder
  /// installs lane-local context (payload arena scope, crypto counter
  /// sink) and invokes body().
  using LaneEnv =
      std::function<void(std::uint32_t lane, const std::function<void()>& body)>;
  void set_lane_env(LaneEnv env) { lane_env_ = std::move(env); }

  /// Runs lookahead windows until the event set drains or \p until is
  /// reached (events at exactly \p until still run, matching the serial
  /// loop); returns events executed.
  std::uint64_t run(SimTime until);

  /// Makes run() return after the current window's barrier.
  void request_stop() noexcept {
    stop_requested_.store(true, std::memory_order_relaxed);
  }

  // ---- stats -----------------------------------------------------------

  [[nodiscard]] std::uint64_t events_executed() const noexcept;
  [[nodiscard]] std::size_t pending() const noexcept;
  /// Deepest any single lane's pending set got (the per-lane figure the
  /// scheduler slab sizing cares about).
  [[nodiscard]] std::size_t queue_high_water() const noexcept;
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
  [[nodiscard]] std::uint64_t halo_packets() const noexcept;
  [[nodiscard]] const LaneStats& lane_stats(std::size_t lane) const {
    return lanes_[lane].stats;
  }

 private:
  /// One halo event in flight between lanes.  seq is the emission order
  /// within the source lane — the canonical tie-break.
  struct Halo {
    SimTime when;
    std::uint64_t seq = 0;
    std::uint32_t src = 0;
    EventFn action;
  };

  struct alignas(64) Lane {
    Scheduler scheduler;
    SimTime now = SimTime::zero();
    /// Outboxes indexed by destination lane; only this lane's thread
    /// writes them during a window, the barrier (single-threaded) drains.
    std::vector<std::vector<Halo>> outbox;
    std::uint64_t halo_seq = 0;
    LaneStats stats;
  };

  /// Drains every outbox into the destination schedulers in canonical
  /// (when, src, seq) order.  Single-threaded (barrier / run entry).
  void merge_halos();
  void run_lane_window(std::uint32_t lane, SimTime window_end_excl);

  static double lane_time_of(const void* ctx) noexcept;

  std::vector<Lane> lanes_;
  SimTime lookahead_;
  support::ThreadPool& pool_;
  LaneEnv lane_env_;
  std::uint64_t windows_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::vector<Halo> merge_scratch_;

  static thread_local std::uint32_t t_lane_;
  static thread_local bool t_in_window_;
};

}  // namespace ldke::sim
