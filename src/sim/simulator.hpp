#pragma once
/// \file simulator.hpp
/// Discrete-event simulation kernel: a clock, a scheduler and a run loop.
/// One Simulator instance owns one trial; there is no global state, so
/// many trials can run concurrently on different threads.

#include <cstddef>
#include <cstdint>
#include <functional>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace ldke::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {
    // While this trial is alive, log lines on this thread carry the
    // simulated clock.  The previous provider is restored on
    // destruction so nested/stacked simulators behave.
    prev_provider_ = support::sim_time_provider();
    support::set_sim_time_provider({&Simulator::sim_time_of, this});
  }

  ~Simulator() {
    // Only restore if we are still the installed provider (a later
    // simulator on this thread may have replaced and restored already).
    const auto current = support::sim_time_provider();
    if (current.ctx == this) support::set_sim_time_provider(prev_provider_);
  }

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// The trial's random stream (placement, timers, losses, workloads).
  [[nodiscard]] support::Xoshiro256& rng() noexcept { return rng_; }

  /// Schedules \p action \p delay after now.
  EventId schedule_in(SimTime delay, EventFn action) {
    return scheduler_.schedule(now_ + delay, std::move(action));
  }

  /// Schedules \p action at absolute time \p when (must be >= now).
  EventId schedule_at(SimTime when, EventFn action) {
    return scheduler_.schedule(when, std::move(action));
  }

  bool cancel(EventId id) { return scheduler_.cancel(id); }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return scheduler_.pending();
  }

  /// Runs until the event set drains or \p until is reached, whichever
  /// comes first.  Returns the number of events executed.
  std::uint64_t run(SimTime until = SimTime::max());

  /// Runs exactly one event if any is pending; returns whether one ran.
  bool step();

  /// Requests that run() return after the current event completes.
  void stop() noexcept { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return events_executed_;
  }

  /// Deepest the event queue has been over the simulator's lifetime.
  [[nodiscard]] std::size_t queue_high_water() const noexcept {
    return scheduler_.high_water();
  }

  /// Wall-clock time spent inside run() so far, for wall-time-per-
  /// sim-second reporting.  Sampled with the cycle counter on x86 so the
  /// per-run() overhead stays out of the event loop's budget; converted
  /// to seconds lazily against the steady clock.
  [[nodiscard]] double wall_seconds() const;

 private:
  static double sim_time_of(const void* ctx) noexcept {
    return static_cast<const Simulator*>(ctx)->now().seconds();
  }

  Scheduler scheduler_;
  support::Xoshiro256 rng_;
  SimTime now_ = SimTime::zero();
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
  std::uint64_t wall_ticks_ = 0;    ///< run() time in cycle-counter ticks
  std::uint64_t tick_epoch_ = 0;    ///< tick reading at first run() entry
  std::int64_t steady_epoch_ns_ = 0;  ///< steady clock at the same instant
  support::SimTimeProvider prev_provider_;
};

}  // namespace ldke::sim
