#pragma once
/// \file simulator.hpp
/// Discrete-event simulation kernel: a clock, a scheduler and a run loop.
/// One Simulator instance owns one trial; there is no global state, so
/// many trials can run concurrently on different threads.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/sharded.hpp"
#include "sim/time.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace ldke::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed), seed_(seed) {
    // While this trial is alive, log lines on this thread carry the
    // simulated clock.  The previous provider is restored on
    // destruction so nested/stacked simulators behave.
    prev_provider_ = support::sim_time_provider();
    support::set_sim_time_provider({&Simulator::sim_time_of, this});
  }

  ~Simulator() {
    // Only restore if we are still the installed provider (a later
    // simulator on this thread may have replaced and restored already).
    const auto current = support::sim_time_provider();
    if (current.ctx == this) support::set_sim_time_provider(prev_provider_);
  }

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.  Under a sharded kernel this is the calling
  /// thread's lane clock (lanes advance independently within a lookahead
  /// window); between runs every lane agrees on the committed time.
  [[nodiscard]] SimTime now() const noexcept {
    return kernel_ ? kernel_->now() : now_;
  }

  /// The trial's random stream (placement, timers, losses, workloads).
  /// Inside a parallel window this is the executing lane's stream —
  /// derived from (seed, lane), so a fixed lane count is deterministic.
  /// The protocol's setup phase draws nothing from it inside events,
  /// which is what makes setup metrics lane-count-invariant.
  [[nodiscard]] support::Xoshiro256& rng() noexcept {
    if (kernel_ && ShardedKernel::in_parallel_window()) {
      return lane_rngs_[ShardedKernel::current_lane()];
    }
    return rng_;
  }

  /// Schedules \p action \p delay after now.
  EventId schedule_in(SimTime delay, EventFn action) {
    if (kernel_) return kernel_->schedule(kernel_->now() + delay, std::move(action));
    return scheduler_.schedule(now_ + delay, std::move(action));
  }

  /// Schedules \p action at absolute time \p when (must be >= now).
  EventId schedule_at(SimTime when, EventFn action) {
    if (kernel_) return kernel_->schedule(when, std::move(action));
    return scheduler_.schedule(when, std::move(action));
  }

  bool cancel(EventId id) {
    if (kernel_) return kernel_->cancel(id);
    return scheduler_.cancel(id);
  }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return kernel_ ? kernel_->pending() : scheduler_.pending();
  }

  // ---- sharded parallel-in-trial kernel --------------------------------

  /// Switches this simulator onto a sharded kernel with \p lanes lanes.
  /// Must be called before any event is scheduled; \p pool must outlive
  /// the simulator.  lanes <= 1 is a no-op (the plain serial loop *is*
  /// the one-lane special case).
  void enable_sharding(std::size_t lanes, SimTime lookahead,
                       support::ThreadPool& pool) {
    if (lanes <= 1 || kernel_) return;
    kernel_ = std::make_unique<ShardedKernel>(lanes, lookahead, pool);
    lane_rngs_.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      lane_rngs_.emplace_back(support::derive_seed(seed_, 0x4c414e45u + l));
    }
  }

  /// The sharded kernel, or nullptr when running serially.
  [[nodiscard]] ShardedKernel* kernel() noexcept { return kernel_.get(); }
  [[nodiscard]] const ShardedKernel* kernel() const noexcept {
    return kernel_.get();
  }

  /// Runs until the event set drains or \p until is reached, whichever
  /// comes first.  Returns the number of events executed.
  std::uint64_t run(SimTime until = SimTime::max());

  /// Runs exactly one event if any is pending; returns whether one ran.
  bool step();

  /// Requests that run() return after the current event completes (the
  /// current window's barrier under a sharded kernel).
  void stop() noexcept {
    stop_requested_ = true;
    if (kernel_) kernel_->request_stop();
  }

  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return kernel_ ? kernel_->events_executed() : events_executed_;
  }

  /// Deepest the event queue has been over the simulator's lifetime
  /// (deepest single lane under a sharded kernel).
  [[nodiscard]] std::size_t queue_high_water() const noexcept {
    return kernel_ ? kernel_->queue_high_water() : scheduler_.high_water();
  }

  /// Wall-clock time spent inside run() so far, for wall-time-per-
  /// sim-second reporting.  Sampled with the cycle counter on x86 so the
  /// per-run() overhead stays out of the event loop's budget; converted
  /// to seconds lazily against the steady clock.
  [[nodiscard]] double wall_seconds() const;

 private:
  static double sim_time_of(const void* ctx) noexcept {
    return static_cast<const Simulator*>(ctx)->now().seconds();
  }

  Scheduler scheduler_;
  support::Xoshiro256 rng_;
  std::uint64_t seed_;
  std::unique_ptr<ShardedKernel> kernel_;
  /// Per-lane event-time random streams; see rng().
  std::vector<support::Xoshiro256> lane_rngs_;
  SimTime now_ = SimTime::zero();
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
  std::uint64_t wall_ticks_ = 0;    ///< run() time in cycle-counter ticks
  std::uint64_t tick_epoch_ = 0;    ///< tick reading at first run() entry
  std::int64_t steady_epoch_ns_ = 0;  ///< steady clock at the same instant
  support::SimTimeProvider prev_provider_;
};

}  // namespace ldke::sim
