#pragma once
/// \file simulator.hpp
/// Discrete-event simulation kernel: a clock, a scheduler and a run loop.
/// One Simulator instance owns one trial; there is no global state, so
/// many trials can run concurrently on different threads.

#include <cstdint>
#include <functional>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "support/rng.hpp"

namespace ldke::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// The trial's random stream (placement, timers, losses, workloads).
  [[nodiscard]] support::Xoshiro256& rng() noexcept { return rng_; }

  /// Schedules \p action \p delay after now.
  EventId schedule_in(SimTime delay, std::function<void()> action) {
    return scheduler_.schedule(now_ + delay, std::move(action));
  }

  /// Schedules \p action at absolute time \p when (must be >= now).
  EventId schedule_at(SimTime when, std::function<void()> action) {
    return scheduler_.schedule(when, std::move(action));
  }

  bool cancel(EventId id) { return scheduler_.cancel(id); }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return scheduler_.pending();
  }

  /// Runs until the event set drains or \p until is reached, whichever
  /// comes first.  Returns the number of events executed.
  std::uint64_t run(SimTime until = SimTime::max());

  /// Runs exactly one event if any is pending; returns whether one ran.
  bool step();

  /// Requests that run() return after the current event completes.
  void stop() noexcept { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return events_executed_;
  }

 private:
  Scheduler scheduler_;
  support::Xoshiro256 rng_;
  SimTime now_ = SimTime::zero();
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace ldke::sim
