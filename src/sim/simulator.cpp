#include "sim/simulator.hpp"

#include <chrono>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace ldke::sim {
namespace {

/// Raw monotonic tick source for wall-time accounting.  The TSC read is
/// a few nanoseconds — cheap enough to bracket every run() call — and
/// wall_seconds() converts ticks to seconds by calibrating against the
/// steady clock over the simulator's whole lifetime (invariant TSC makes
/// the ratio constant).  Non-x86 builds fall back to the steady clock
/// directly, where ticks already are nanoseconds.
std::uint64_t wall_ticks_now() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t Simulator::run(SimTime until) {
  const std::uint64_t ticks_start = wall_ticks_now();
  if (tick_epoch_ == 0) {
    tick_epoch_ = ticks_start;
    steady_epoch_ns_ = steady_now_ns();
  }
  stop_requested_ = false;
  if (kernel_) {
    const std::uint64_t ran = kernel_->run(until);
    if (until != SimTime::max() && now_ < until) now_ = until;
    wall_ticks_ += wall_ticks_now() - ticks_start;
    return ran;
  }
  std::uint64_t ran = 0;
  while (!scheduler_.empty() && !stop_requested_) {
    const SimTime when = scheduler_.next_time();
    if (when > until) break;
    // Advance the clock *before* running the event so actions observe
    // now() == their scheduled time.
    now_ = when;
    scheduler_.run_next();
    ++ran;
    ++events_executed_;
  }
  if (until != SimTime::max() && now_ < until && !stop_requested_) {
    now_ = until;  // advance the clock to the end of the requested window
  }
  wall_ticks_ += wall_ticks_now() - ticks_start;
  return ran;
}

bool Simulator::step() {
  // step() is a serial debugging aid; under a sharded kernel a single
  // "next event" is ambiguous, so drive one zero-width run instead.
  if (kernel_) {
    if (kernel_->pending() == 0) return false;
    return kernel_->run(SimTime::max()) > 0;
  }
  if (scheduler_.empty()) return false;
  now_ = scheduler_.next_time();
  scheduler_.run_next();
  ++events_executed_;
  return true;
}

double Simulator::wall_seconds() const {
#if defined(__x86_64__) || defined(__i386__)
  if (wall_ticks_ == 0 || tick_epoch_ == 0) return 0.0;
  const std::uint64_t ticks_span = wall_ticks_now() - tick_epoch_;
  const std::int64_t steady_span_ns = steady_now_ns() - steady_epoch_ns_;
  if (ticks_span == 0 || steady_span_ns <= 0) return 0.0;
  const double ns_per_tick = static_cast<double>(steady_span_ns) /
                             static_cast<double>(ticks_span);
  return static_cast<double>(wall_ticks_) * ns_per_tick * 1e-9;
#else
  return static_cast<double>(wall_ticks_) * 1e-9;
#endif
}

}  // namespace ldke::sim
