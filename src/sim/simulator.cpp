#include "sim/simulator.hpp"

namespace ldke::sim {

std::uint64_t Simulator::run(SimTime until) {
  stop_requested_ = false;
  std::uint64_t ran = 0;
  while (!scheduler_.empty() && !stop_requested_) {
    const SimTime when = scheduler_.next_time();
    if (when > until) break;
    // Advance the clock *before* running the event so actions observe
    // now() == their scheduled time.
    now_ = when;
    scheduler_.run_next();
    ++ran;
    ++events_executed_;
  }
  if (until != SimTime::max() && now_ < until && !stop_requested_) {
    now_ = until;  // advance the clock to the end of the requested window
  }
  return ran;
}

bool Simulator::step() {
  if (scheduler_.empty()) return false;
  now_ = scheduler_.next_time();
  scheduler_.run_next();
  ++events_executed_;
  return true;
}

}  // namespace ldke::sim
