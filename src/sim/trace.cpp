#include "sim/trace.hpp"

#include <sstream>

namespace ldke::sim {

TraceCounters::Handle TraceCounters::handle(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, 0).first;
  }
  pinned_.emplace(it->first);
  return Handle{&it->second};
}

void TraceCounters::increment(std::string_view name, std::uint64_t by) {
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string{name}, by);
  } else {
    it->second += by;
  }
}

std::uint64_t TraceCounters::value(std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void TraceCounters::clear() noexcept {
  for (auto it = counters_.begin(); it != counters_.end();) {
    if (pinned_.contains(it->first)) {
      it->second = 0;
      ++it;
    } else {
      it = counters_.erase(it);
    }
  }
}

std::string TraceCounters::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << '=' << value << '\n';
  }
  return os.str();
}

}  // namespace ldke::sim
