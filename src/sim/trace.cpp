#include "sim/trace.hpp"

#include <sstream>

namespace ldke::sim {

void TraceCounters::increment(std::string_view name, std::uint64_t by) {
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string{name}, by);
  } else {
    it->second += by;
  }
}

std::uint64_t TraceCounters::value(std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::string TraceCounters::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << '=' << value << '\n';
  }
  return os.str();
}

}  // namespace ldke::sim
