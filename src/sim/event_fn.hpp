#pragma once
/// \file event_fn.hpp
/// Move-only type-erased callable for scheduler events.  std::function's
/// small-buffer slot (16 bytes on common ABIs) is too small for the
/// simulator's typical event — a channel delivery captures a Packet
/// (shared payload ref), a receiver id and a collision flag — so every
/// scheduled event paid a heap allocation.  EventFn keeps a 64-byte
/// inline buffer, which fits all hot-path events; larger captures fall
/// back to the heap transparently.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ldke::sim {

class EventFn {
 public:
  /// Inline capture budget: sized for the fattest hot-path event (a
  /// channel delivery: vtable-free lambda of this + id + 16-byte Packet +
  /// shared_ptr ≈ 44 bytes).  48 keeps a scheduler Slot (EventFn + ops
  /// pointer + generation) at exactly one 64-byte cache line.
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() = default;
  EventFn(std::nullptr_t) {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule() call site
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (storage()) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      *static_cast<Fn**>(storage()) = new Fn(std::forward<F>(fn));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(std::move(other)); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  EventFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage()); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(void*) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(static_cast<Fn*>(p)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* p) noexcept { std::launder(static_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) noexcept {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
  };

  void move_from(EventFn&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage(), other.storage());
      other.ops_ = nullptr;
    }
  }

  [[nodiscard]] void* storage() noexcept { return buf_; }

  // Pointer alignment, not max_align_t: captures are pointers, ids and
  // Packets, and 8-byte alignment keeps sizeof(EventFn) at 56 so a
  // scheduler Slot stays within one cache line.  Over-aligned captures
  // fall back to the heap via fits_inline().
  alignas(void*) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ldke::sim
