#include "sim/sharded.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "support/logging.hpp"

namespace ldke::sim {

thread_local std::uint32_t ShardedKernel::t_lane_ = 0;
thread_local bool ShardedKernel::t_in_window_ = false;

namespace {

std::uint64_t wall_ns_now() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// until is inclusive (serial run() executes events at exactly `until`),
/// windows are exclusive-ended; saturate instead of overflowing at max().
SimTime exclusive_cap(SimTime until) noexcept {
  if (until == SimTime::max()) return SimTime::max();
  return until + SimTime::from_ns(1);
}

SimTime saturating_add(SimTime a, SimTime b) noexcept {
  if (a.ns() > SimTime::max().ns() - b.ns()) return SimTime::max();
  return a + b;
}

}  // namespace

ShardedKernel::ShardedKernel(std::size_t lanes, SimTime lookahead,
                             support::ThreadPool& pool)
    : lanes_(std::max<std::size_t>(1, lanes)),
      lookahead_(lookahead),
      pool_(pool) {
  assert(lookahead_.ns() > 0 && "lookahead window must be positive");
  for (Lane& lane : lanes_) lane.outbox.resize(lanes_.size());
}

EventId ShardedKernel::schedule(SimTime when, EventFn action) {
  // High-water tracking happens at window ends, not per schedule — this
  // is the hot path.
  return lanes_[t_lane_].scheduler.schedule(when, std::move(action));
}

bool ShardedKernel::cancel(EventId id) {
  // Cancellation is lane-local by construction: a node only ever cancels
  // its own timers, and those were scheduled from its lane.
  return lanes_[t_lane_].scheduler.cancel(id);
}

void ShardedKernel::schedule_cross(std::uint32_t dst_lane, SimTime when,
                                   EventFn action) {
  Lane& src = lanes_[t_lane_];
  assert(dst_lane < lanes_.size());
  assert(when >= saturating_add(src.now, lookahead_) &&
         "halo event violates the lookahead contract");
  src.outbox[dst_lane].push_back(
      Halo{when, src.halo_seq++, t_lane_, std::move(action)});
  ++src.stats.halo_out;
}

double ShardedKernel::lane_time_of(const void* ctx) noexcept {
  return static_cast<const Lane*>(ctx)->now.seconds();
}

void ShardedKernel::merge_halos() {
  for (std::uint32_t dst = 0; dst < lanes_.size(); ++dst) {
    merge_scratch_.clear();
    for (Lane& src : lanes_) {
      auto& box = src.outbox[dst];
      for (Halo& h : box) merge_scratch_.push_back(std::move(h));
      box.clear();
    }
    if (merge_scratch_.empty()) continue;
    // Canonical cross-lane order: (time, source lane, source sequence).
    // Scheduling in this order hands the destination scheduler a
    // deterministic tie-break sequence, independent of thread timing.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const Halo& a, const Halo& b) noexcept {
                if (a.when != b.when) return a.when < b.when;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    Lane& lane = lanes_[dst];
    for (Halo& h : merge_scratch_) {
      lane.scheduler.schedule(h.when, std::move(h.action));
      ++lane.stats.halo_in;
    }
    lane.stats.queue_high_water =
        std::max(lane.stats.queue_high_water, lane.scheduler.high_water());
    merge_scratch_.clear();
  }
}

void ShardedKernel::run_lane_window(std::uint32_t lane_index,
                                    SimTime window_end_excl) {
  Lane& lane = lanes_[lane_index];
  const std::uint64_t t0 = wall_ns_now();
  t_lane_ = lane_index;
  t_in_window_ = true;
  // Log lines and other sim-time readers on this worker thread see the
  // lane's clock while its window runs.
  const support::SimTimeProvider prev = support::sim_time_provider();
  support::set_sim_time_provider({&ShardedKernel::lane_time_of, &lane});

  Scheduler& sched = lane.scheduler;
  while (!sched.empty()) {
    const SimTime when = sched.next_time();
    if (when >= window_end_excl) break;
    lane.now = when;
    sched.run_next();
    ++lane.stats.events;
  }
  lane.stats.queue_high_water =
      std::max(lane.stats.queue_high_water, sched.high_water());

  support::set_sim_time_provider(prev);
  t_in_window_ = false;
  t_lane_ = 0;
  lane.stats.busy_ns += wall_ns_now() - t0;
}

std::uint64_t ShardedKernel::run(SimTime until) {
  stop_requested_.store(false, std::memory_order_relaxed);
  // Serial phase drivers (start_all, node joins, recluster kicks) may
  // have parked halos while no window was running.
  merge_halos();

  std::uint64_t executed_before = events_executed();
  const SimTime cap = exclusive_cap(until);
  std::vector<std::uint64_t> busy_before(lanes_.size());

  while (!stop_requested_.load(std::memory_order_relaxed)) {
    SimTime next = SimTime::max();
    for (Lane& lane : lanes_) {
      if (!lane.scheduler.empty()) {
        next = std::min(next, lane.scheduler.next_time());
      }
    }
    if (next == SimTime::max() || next > until) break;

    // Conservative lookahead window: every event in [next, next + W) can
    // only affect other lanes at or after next + W, so the lanes run the
    // whole window concurrently without synchronizing.
    const SimTime window_end_excl =
        std::min(saturating_add(next, lookahead_), cap);
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      busy_before[l] = lanes_[l].stats.busy_ns;
    }
    pool_.parallel_for(lanes_.size(), [&](std::size_t l) {
      const auto lane = static_cast<std::uint32_t>(l);
      if (lane_env_) {
        lane_env_(lane, [&] { run_lane_window(lane, window_end_excl); });
      } else {
        run_lane_window(lane, window_end_excl);
      }
    });
    ++windows_;
    // Stall = how much sooner each lane finished than the window's
    // critical path; the balance figure ldke_trace reports.
    std::uint64_t max_busy = 0;
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      max_busy =
          std::max(max_busy, lanes_[l].stats.busy_ns - busy_before[l]);
    }
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      lanes_[l].stats.barrier_wait_ns +=
          max_busy - (lanes_[l].stats.busy_ns - busy_before[l]);
    }
    merge_halos();
  }

  // Match the serial loop: the clock advances to the end of the
  // requested window even when the event set drained early.
  if (until != SimTime::max()) {
    for (Lane& lane : lanes_) lane.now = std::max(lane.now, until);
  }
  return events_executed() - executed_before;
}

std::uint64_t ShardedKernel::events_executed() const noexcept {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.stats.events;
  return total;
}

std::size_t ShardedKernel::pending() const noexcept {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) {
    total += lane.scheduler.pending();
    for (const auto& box : lane.outbox) total += box.size();
  }
  return total;
}

std::size_t ShardedKernel::queue_high_water() const noexcept {
  std::size_t deepest = 0;
  for (const Lane& lane : lanes_) {
    deepest = std::max(deepest, lane.stats.queue_high_water);
  }
  return deepest;
}

std::uint64_t ShardedKernel::halo_packets() const noexcept {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.stats.halo_out;
  return total;
}

}  // namespace ldke::sim
