#pragma once
/// \file time.hpp
/// Simulation time.  Stored as integral nanoseconds so event ordering is
/// exact and independent of floating-point accumulation.

#include <compare>
#include <cstdint>

namespace ldke::sim {

/// A point or duration on the simulated clock.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  [[nodiscard]] static constexpr SimTime from_ns(std::int64_t ns) noexcept {
    return SimTime{ns};
  }
  [[nodiscard]] static constexpr SimTime from_us(double us) noexcept {
    return SimTime{static_cast<std::int64_t>(us * 1e3)};
  }
  [[nodiscard]] static constexpr SimTime from_ms(double ms) noexcept {
    return SimTime{static_cast<std::int64_t>(ms * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime from_seconds(double s) noexcept {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime{}; }
  [[nodiscard]] static constexpr SimTime max() noexcept {
    return SimTime{INT64_MAX};
  }

  [[nodiscard]] constexpr std::int64_t ns() const noexcept { return ns_; }
  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr double milliseconds() const noexcept {
    return static_cast<double>(ns_) * 1e-6;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime{a.ns_ - b.ns_};
  }
  constexpr SimTime& operator+=(SimTime other) noexcept {
    ns_ += other.ns_;
    return *this;
  }

 private:
  explicit constexpr SimTime(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace ldke::sim
