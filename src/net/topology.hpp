#pragma once
/// \file topology.hpp
/// Node placement and the unit-disk communication graph.
///
/// The paper deploys "several thousands of nodes (2500 to 3600) in a
/// random topology" and controls the *density* — the average number of
/// neighbors per node.  For N nodes uniform in an L×L square with radio
/// range r, density ≈ N·πr²/L² (ignoring edge effects), so the range that
/// realizes a requested density is r = L·sqrt(d/(πN)).

#include <cstdint>
#include <span>
#include <vector>

#include "net/vec2.hpp"
#include "support/rng.hpp"

namespace ldke::net {

using NodeId = std::uint32_t;

inline constexpr NodeId kNoNode = UINT32_MAX;

/// Immutable-after-build placement + neighbor lists (grows only through
/// add_node(), which the node-addition protocol of §IV-E uses).
class Topology {
 public:
  /// Deploys \p count nodes uniformly at random in a square of side
  /// \p side, with radio range \p range.
  static Topology random_uniform(std::size_t count, double side, double range,
                                 support::Xoshiro256& rng);

  /// Same, but chooses the range that yields the requested average
  /// density (mean neighbors per node).
  static Topology random_with_density(std::size_t count, double side,
                                      double density,
                                      support::Xoshiro256& rng);

  /// Builds from explicit positions (unit tests, worked examples).
  static Topology from_positions(std::vector<Vec2> positions, double range);

  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] double side() const noexcept { return side_; }
  [[nodiscard]] double range() const noexcept { return range_; }

  [[nodiscard]] Vec2 position(NodeId id) const { return positions_[id]; }

  /// Ids of nodes within radio range of \p id (excluding \p id).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId id) const {
    return neighbor_lists_[id];
  }

  /// Average neighbor count over all nodes (realized density).
  [[nodiscard]] double mean_degree() const noexcept;

  /// Nodes within \p radius of an arbitrary position (attacker
  /// transmissions, coverage queries).
  [[nodiscard]] std::vector<NodeId> nodes_within(Vec2 center,
                                                 double radius) const;

  [[nodiscard]] bool in_range(NodeId a, NodeId b) const {
    return distance_squared(positions_[a], positions_[b]) <= range_ * range_;
  }

  /// Deploys one more node at \p pos; updates neighbor lists on both
  /// sides.  Returns the new node's id.
  NodeId add_node(Vec2 pos);

  /// Range that realizes \p density for \p count nodes in a square of
  /// side \p side (edge effects ignored).
  [[nodiscard]] static double range_for_density(std::size_t count, double side,
                                                double density) noexcept;

 private:
  Topology() = default;
  void rebuild_neighbor_lists();
  void index_into_grid();
  [[nodiscard]] std::vector<NodeId> scan_neighbors(Vec2 center, double radius,
                                                   NodeId exclude) const;

  std::vector<Vec2> positions_;
  std::vector<std::vector<NodeId>> neighbor_lists_;
  double side_ = 1.0;
  double range_ = 0.1;

  // Uniform grid for O(1)-ish neighbor queries: cell size == range.
  std::vector<std::vector<NodeId>> grid_;
  std::size_t grid_dim_ = 0;
  [[nodiscard]] std::size_t cell_index(Vec2 pos) const noexcept;
};

}  // namespace ldke::net
