#pragma once
/// \file topology.hpp
/// Node placement and the unit-disk communication graph.
///
/// The paper deploys "several thousands of nodes (2500 to 3600) in a
/// random topology" and controls the *density* — the average number of
/// neighbors per node.  For N nodes uniform in an L×L square with radio
/// range r, density ≈ N·πr²/L² (ignoring edge effects), so the range that
/// realizes a requested density is r = L·sqrt(d/(πN)).
///
/// Two maintenance regimes share one query interface:
///  - Bulk builds (construction, update_positions) lay the neighbor
///    lists out exact-fit in one flat pool and index positions with a
///    counting-sort CSR grid — the cache-friendly path the static-setup
///    scale sweeps run on.
///  - apply_displacements() patches only what a mobility epoch actually
///    changed: movers are re-bucketed in a doubly-linked cell grid and
///    rescanned; the unit-disk identity (an edge flips only if an
///    endpoint moved) lets non-movers keep their lists except for
///    per-edge sorted patches.  Slots grow into slack at the pool tail
///    and the pool compacts double-buffered once dead slack dominates.
/// Both regimes produce element-identical sorted neighbor lists, so a
/// consumer cannot observe which one ran.

#include <cstdint>
#include <span>
#include <vector>

#include "net/vec2.hpp"
#include "support/rng.hpp"

namespace ldke::net {

using NodeId = std::uint32_t;

inline constexpr NodeId kNoNode = UINT32_MAX;

/// One unit-disk edge flipping state during apply_displacements().
/// Endpoints are canonicalized a < b.
struct EdgeChange {
  NodeId a = 0;
  NodeId b = 0;
  bool added = false;
  friend bool operator==(const EdgeChange&, const EdgeChange&) = default;
};

/// Placement + neighbor lists; grows through add_node() (§IV-E) and
/// moves through update_positions() / apply_displacements().
class Topology {
 public:
  /// Running totals for the incremental maintenance path (bench/CI
  /// telemetry: per-epoch cost should track movers, not N).
  struct MaintenanceStats {
    std::uint64_t incremental_epochs = 0;
    std::uint64_t movers_rescanned = 0;
    std::uint64_t cell_rebuckets = 0;
    std::uint64_t edges_added = 0;
    std::uint64_t edges_removed = 0;
    std::uint64_t slot_relocations = 0;
    std::uint64_t pool_compactions = 0;
  };

  /// Deploys \p count nodes uniformly at random in a square of side
  /// \p side, with radio range \p range.
  static Topology random_uniform(std::size_t count, double side, double range,
                                 support::Xoshiro256& rng);

  /// Same, but chooses the range that yields the requested average
  /// density (mean neighbors per node).
  static Topology random_with_density(std::size_t count, double side,
                                      double density,
                                      support::Xoshiro256& rng);

  /// Builds from explicit positions (unit tests, worked examples).
  static Topology from_positions(std::vector<Vec2> positions, double range);

  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] double side() const noexcept { return side_; }
  [[nodiscard]] double range() const noexcept { return range_; }

  [[nodiscard]] Vec2 position(NodeId id) const { return positions_[id]; }

  /// Ids of nodes within radio range of \p id (excluding \p id),
  /// ascending.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId id) const {
    return {nbr_pool_.data() + nbr_begin_[id], nbr_count_[id]};
  }

  /// Average neighbor count over all nodes (realized density).
  [[nodiscard]] double mean_degree() const noexcept;

  /// Nodes within \p radius of an arbitrary position (attacker
  /// transmissions, coverage queries).
  [[nodiscard]] std::vector<NodeId> nodes_within(Vec2 center,
                                                 double radius) const;

  [[nodiscard]] bool in_range(NodeId a, NodeId b) const {
    return distance_squared(positions_[a], positions_[b]) <= range_ * range_;
  }

  /// Deploys one more node at \p pos; updates neighbor lists on both
  /// sides.  Returns the new node's id.
  NodeId add_node(Vec2 pos);

  /// Bulk position update (full-rebuild mobility reference): replaces
  /// every node's position and rebuilds the grid index and neighbor
  /// lists from scratch, reusing the existing allocations.  \p positions
  /// must have exactly size() entries; positions are clamped to
  /// [0, side].
  void update_positions(std::span<const Vec2> positions);

  /// Incremental position update: \p moved lists the ids whose position
  /// changed this epoch (ascending, no duplicates) and \p new_positions
  /// their new coordinates, index-aligned with \p moved (clamped to
  /// [0, side]).  Cost is proportional to movers and their neighborhood
  /// churn, not to size().  When \p diff is non-null, every unit-disk
  /// edge that flipped is appended exactly once (endpoints a < b).
  /// Produces neighbor lists element-identical to update_positions()
  /// with the equivalent full position array.
  void apply_displacements(std::span<const NodeId> moved,
                           std::span<const Vec2> new_positions,
                           std::vector<EdgeChange>* diff = nullptr);

  [[nodiscard]] std::span<const Vec2> positions() const noexcept {
    return positions_;
  }

  [[nodiscard]] const MaintenanceStats& maintenance_stats() const noexcept {
    return maint_;
  }

  /// Range that realizes \p density for \p count nodes in a square of
  /// side \p side (edge effects ignored).
  [[nodiscard]] static double range_for_density(std::size_t count, double side,
                                                double density) noexcept;

  /// Expected mean degree for the current placement (N·πr²/L², the
  /// density identity) — sizing hint for scans and reserves.
  [[nodiscard]] double expected_degree() const noexcept;

 private:
  Topology() = default;
  void rebuild_neighbor_lists();
  void index_into_grid();
  void ensure_linked_grid();
  void grid_unlink(NodeId id);
  void grid_link(NodeId id, std::uint32_t cell);
  /// Appends nodes within \p radius of \p center (minus \p exclude) to
  /// \p out, sorted ascending; the range already in \p out is untouched.
  void scan_into(std::vector<NodeId>& out, Vec2 center, double radius,
                 NodeId exclude) const;
  [[nodiscard]] std::vector<NodeId> scan_neighbors(Vec2 center, double radius,
                                                   NodeId exclude) const;
  /// Writes \p ids (sorted) as \p id's neighbor list, relocating the
  /// slot to the pool tail with slack when it no longer fits.
  void store_list(NodeId id, std::span<const NodeId> ids);
  /// Sorted insert/erase of \p other in \p id's list (one edge patch).
  void patch_insert(NodeId id, NodeId other);
  void patch_erase(NodeId id, NodeId other);
  /// Rewrites the pool without dead slack once waste dominates
  /// (double-buffered: built in a scratch vector, then swapped in).
  void compact_pool();

  std::vector<Vec2> positions_;
  // Neighbor lists in slotted form: node id's neighbors live in
  // nbr_pool_[nbr_begin_[id] .. nbr_begin_[id] + nbr_count_[id]), with
  // nbr_cap_[id] >= nbr_count_[id] slots reserved.  Bulk builds lay the
  // slots out exact-fit in id order (cap == count, zero waste — the CSR
  // the static sweeps ran on); incremental patches grow a slot by
  // relocating it to the pool tail, leaving the old slot dead until
  // compact_pool() squeezes the waste out.
  std::vector<NodeId> nbr_pool_;
  std::vector<std::uint32_t> nbr_begin_;
  std::vector<std::uint32_t> nbr_count_;
  std::vector<std::uint32_t> nbr_cap_;
  std::uint64_t total_degree_ = 0;
  double side_ = 1.0;
  double range_ = 0.1;

  // Spatial index, one of two interchangeable shapes (scan_into sorts
  // its output, so per-cell iteration order never leaks):
  //  - CSR (grid_offsets_/grid_ids_): counting-sorted, cache-friendly,
  //    built by every bulk pass.
  //  - Doubly-linked cells (cell_head_/next_/prev_/cell_of_): O(1)
  //    re-bucket per mover, materialized lazily by the first
  //    apply_displacements()/add_node() and kept until the next bulk
  //    rebuild.
  std::vector<std::uint32_t> grid_offsets_;
  std::vector<NodeId> grid_ids_;
  std::vector<NodeId> cell_head_;
  std::vector<NodeId> grid_next_;
  std::vector<NodeId> grid_prev_;
  std::vector<std::uint32_t> cell_of_;
  bool grid_linked_ = false;
  std::size_t grid_dim_ = 0;
  [[nodiscard]] std::size_t cell_index(Vec2 pos) const noexcept;

  // Epoch-stamped mover membership for apply_displacements (O(1) "did
  // this endpoint move too?" checks without clearing a bitset per call).
  std::vector<std::uint32_t> mover_stamp_;
  std::uint32_t stamp_epoch_ = 0;
  std::vector<NodeId> scratch_old_;
  std::vector<NodeId> scratch_new_;
  std::vector<NodeId> scratch_patch_;
  std::vector<NodeId> compact_buf_;
  MaintenanceStats maint_;
};

}  // namespace ldke::net
