#pragma once
/// \file topology.hpp
/// Node placement and the unit-disk communication graph.
///
/// The paper deploys "several thousands of nodes (2500 to 3600) in a
/// random topology" and controls the *density* — the average number of
/// neighbors per node.  For N nodes uniform in an L×L square with radio
/// range r, density ≈ N·πr²/L² (ignoring edge effects), so the range that
/// realizes a requested density is r = L·sqrt(d/(πN)).

#include <cstdint>
#include <span>
#include <vector>

#include "net/vec2.hpp"
#include "support/rng.hpp"

namespace ldke::net {

using NodeId = std::uint32_t;

inline constexpr NodeId kNoNode = UINT32_MAX;

/// Immutable-after-build placement + neighbor lists (grows only through
/// add_node(), which the node-addition protocol of §IV-E uses).
class Topology {
 public:
  /// Deploys \p count nodes uniformly at random in a square of side
  /// \p side, with radio range \p range.
  static Topology random_uniform(std::size_t count, double side, double range,
                                 support::Xoshiro256& rng);

  /// Same, but chooses the range that yields the requested average
  /// density (mean neighbors per node).
  static Topology random_with_density(std::size_t count, double side,
                                      double density,
                                      support::Xoshiro256& rng);

  /// Builds from explicit positions (unit tests, worked examples).
  static Topology from_positions(std::vector<Vec2> positions, double range);

  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] double side() const noexcept { return side_; }
  [[nodiscard]] double range() const noexcept { return range_; }

  [[nodiscard]] Vec2 position(NodeId id) const { return positions_[id]; }

  /// Ids of nodes within radio range of \p id (excluding \p id),
  /// ascending.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId id) const {
    return {neighbor_ids_.data() + neighbor_offsets_[id],
            neighbor_offsets_[id + 1] - neighbor_offsets_[id]};
  }

  /// Average neighbor count over all nodes (realized density).
  [[nodiscard]] double mean_degree() const noexcept;

  /// Nodes within \p radius of an arbitrary position (attacker
  /// transmissions, coverage queries).
  [[nodiscard]] std::vector<NodeId> nodes_within(Vec2 center,
                                                 double radius) const;

  [[nodiscard]] bool in_range(NodeId a, NodeId b) const {
    return distance_squared(positions_[a], positions_[b]) <= range_ * range_;
  }

  /// Deploys one more node at \p pos; updates neighbor lists on both
  /// sides.  Returns the new node's id.
  NodeId add_node(Vec2 pos);

  /// Bulk position update (mobility epochs): replaces every node's
  /// position and rebuilds the grid index and CSR neighbor lists in one
  /// pass, reusing the existing allocations.  \p positions must have
  /// exactly size() entries; positions are clamped to [0, side].
  void update_positions(std::span<const Vec2> positions);

  [[nodiscard]] std::span<const Vec2> positions() const noexcept {
    return positions_;
  }

  /// Range that realizes \p density for \p count nodes in a square of
  /// side \p side (edge effects ignored).
  [[nodiscard]] static double range_for_density(std::size_t count, double side,
                                                double density) noexcept;

  /// Expected mean degree for the current placement (N·πr²/L², the
  /// density identity) — sizing hint for scans and reserves.
  [[nodiscard]] double expected_degree() const noexcept;

 private:
  Topology() = default;
  void rebuild_neighbor_lists();
  void index_into_grid();
  /// Appends nodes within \p radius of \p center (minus \p exclude) to
  /// \p out, sorted ascending; the range already in \p out is untouched.
  void scan_into(std::vector<NodeId>& out, Vec2 center, double radius,
                 NodeId exclude) const;
  [[nodiscard]] std::vector<NodeId> scan_neighbors(Vec2 center, double radius,
                                                   NodeId exclude) const;

  std::vector<Vec2> positions_;
  // Neighbor lists in CSR form: node id's neighbors are
  // neighbor_ids_[neighbor_offsets_[id] .. neighbor_offsets_[id+1]).
  // One flat allocation sized to the exact total degree replaces a
  // 24-byte vector header plus a growth-slack heap block per node.
  std::vector<std::uint32_t> neighbor_offsets_;
  std::vector<NodeId> neighbor_ids_;
  double side_ = 1.0;
  double range_ = 0.1;

  // Uniform grid for O(1)-ish neighbor queries, also CSR: cell c holds
  // grid_ids_[grid_offsets_[c] .. grid_offsets_[c+1]).  Cell size is the
  // radio range where affordable; grid_dim_ is clamped so the cell count
  // stays O(N) even when range_ is tiny relative to side_.
  std::vector<std::uint32_t> grid_offsets_;
  std::vector<NodeId> grid_ids_;
  std::size_t grid_dim_ = 0;
  [[nodiscard]] std::size_t cell_index(Vec2 pos) const noexcept;
};

}  // namespace ldke::net
