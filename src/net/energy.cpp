#include "net/energy.hpp"

namespace ldke::net {

void EnergyModel::resize(std::size_t count) {
  if (count > per_node_.size()) per_node_.resize(count, 0.0);
}

void EnergyModel::charge_tx(NodeId id, std::size_t bytes, double range_m) {
  resize(id + 1);
  const double bits = static_cast<double>(bytes) * 8.0;
  const double joules = config_.e_elec_j_per_bit * bits +
                        config_.e_amp_j_per_bit_m2 * bits * range_m * range_m;
  per_node_[id] += joules;
  tx_total_ += joules;
}

void EnergyModel::charge_rx(NodeId id, std::size_t bytes) {
  resize(id + 1);
  const double bits = static_cast<double>(bytes) * 8.0;
  const double joules = config_.e_elec_j_per_bit * bits;
  per_node_[id] += joules;
  rx_total_ += joules;
}

double EnergyModel::consumed_j(NodeId id) const noexcept {
  return id < per_node_.size() ? per_node_[id] : 0.0;
}

double EnergyModel::total_j() const noexcept {
  double sum = 0.0;
  for (double j : per_node_) sum += j;
  return sum;
}

}  // namespace ldke::net
