#include "net/energy.hpp"

namespace ldke::net {
namespace {

double sum_in_id_order(const std::vector<double>& cells) noexcept {
  double sum = 0.0;
  for (double j : cells) sum += j;
  return sum;
}

}  // namespace

void EnergyModel::resize(std::size_t count) {
  if (count > tx_.size()) {
    tx_.resize(count, 0.0);
    rx_.resize(count, 0.0);
  }
}

void EnergyModel::charge_tx(NodeId id, std::size_t bytes, double range_m) {
  resize(id + 1);
  const double bits = static_cast<double>(bytes) * 8.0;
  tx_[id] += config_.e_elec_j_per_bit * bits +
             config_.e_amp_j_per_bit_m2 * bits * range_m * range_m;
}

void EnergyModel::charge_rx(NodeId id, std::size_t bytes) {
  resize(id + 1);
  rx_[id] += config_.e_elec_j_per_bit * static_cast<double>(bytes) * 8.0;
}

double EnergyModel::consumed_j(NodeId id) const noexcept {
  return id < tx_.size() ? tx_[id] + rx_[id] : 0.0;
}

double EnergyModel::total_j() const noexcept { return tx_j() + rx_j(); }

double EnergyModel::tx_j() const noexcept { return sum_in_id_order(tx_); }

double EnergyModel::rx_j() const noexcept { return sum_in_id_order(rx_); }

}  // namespace ldke::net
