#pragma once
/// \file packet_trace.hpp
/// Packet-level trace recorder: hooks the channel sniffer and keeps a
/// bounded in-memory log of every transmission (time, sender, kind,
/// size).  Dumps as JSON-lines for offline inspection — the debugging
/// affordance SensorSimII's trace files provided.

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace ldke::net {

struct TraceRecord {
  std::int64_t time_ns = 0;
  NodeId sender = kNoNode;
  PacketKind kind = PacketKind::kData;
  std::uint32_t size_bytes = 0;
};

/// Human-readable name of a packet kind ("hello", "data", ...).
[[nodiscard]] std::string_view packet_kind_name(PacketKind kind) noexcept;

class PacketTrace {
 public:
  /// Keeps at most \p capacity records (oldest evicted first).
  explicit PacketTrace(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  /// Starts recording all transmissions on \p net (owns the sniffer
  /// hook; replaces any previous one).
  void attach(Network& net);

  /// Restricts recording to the given kinds (empty mask = record all;
  /// that is the default).  Packets excluded by the filter count in
  /// total_seen() and filtered(), not in dropped_records().
  void set_kind_filter(std::initializer_list<PacketKind> kinds);
  void clear_kind_filter() noexcept { kind_mask_ = 0; }
  [[nodiscard]] bool accepts(PacketKind kind) const noexcept {
    return kind_mask_ == 0 ||
           (kind_mask_ >> static_cast<unsigned>(kind)) & 1u;
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t total_seen() const noexcept {
    return total_seen_;
  }
  /// Records evicted because the bounded buffer overflowed.  (Filtered
  /// packets are never records, so they are not "dropped".)
  [[nodiscard]] std::uint64_t dropped_records() const noexcept {
    return dropped_records_;
  }
  /// Packets excluded by the kind filter.
  [[nodiscard]] std::uint64_t filtered() const noexcept { return filtered_; }
  /// Packets seen but not retained, for any reason (eviction or filter).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_records_ + filtered_;
  }

  /// Transmission count per packet kind over the retained window.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  histogram_by_kind() const;

  /// One JSON object per line: {"t":..., "sender":..., "kind":"...",
  /// "bytes":...}.  When any packets were evicted or filtered, a final
  /// summary line {"type":"trace_drops","seen":...,"recorded":...,
  /// "dropped":...,"filtered":...} reports the gap so consumers know the
  /// dump is partial.
  void dump_jsonl(std::ostream& os) const;

  void clear() noexcept {
    records_.clear();
    total_seen_ = 0;
    dropped_records_ = 0;
    filtered_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> records_;
  std::uint64_t total_seen_ = 0;
  std::uint64_t dropped_records_ = 0;
  std::uint64_t filtered_ = 0;
  /// Bit i set = record PacketKind(i); all-zero = no filter.
  std::uint32_t kind_mask_ = 0;
};

}  // namespace ldke::net
