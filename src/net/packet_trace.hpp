#pragma once
/// \file packet_trace.hpp
/// Packet-level trace recorder: hooks the channel sniffer and keeps a
/// bounded in-memory log of every transmission (time, sender, kind,
/// size).  Dumps as JSON-lines for offline inspection — the debugging
/// affordance SensorSimII's trace files provided.
///
/// Storage is lane-sharded: under a sharded kernel every lane thread
/// appends to its own shard (no locks, no false sharing), and
/// merged_records() restores one canonical stream ordered by
/// (time, sender).  That order is invariant under the lane count —
/// every sender lives in exactly one lane and its transmissions are
/// recorded in deterministic order — so a merged trace is byte-identical
/// whether the run used 1, 2 or 8 lanes.

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace ldke::net {

struct TraceRecord {
  std::int64_t time_ns = 0;
  NodeId sender = kNoNode;
  PacketKind kind = PacketKind::kData;
  std::uint32_t size_bytes = 0;
  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Human-readable name of a packet kind ("hello", "data", ...).
[[nodiscard]] std::string_view packet_kind_name(PacketKind kind) noexcept;

class PacketTrace {
 public:
  /// Keeps at most \p capacity records per lane shard (oldest evicted
  /// first, a quarter at a time).
  explicit PacketTrace(std::size_t capacity = 1 << 16);

  /// Starts recording all transmissions on \p net (owns the sniffer
  /// hook; replaces any previous one).  Sizes the shard array to the
  /// network's lane count, so call after Network::enable_lanes when the
  /// run is sharded.
  void attach(Network& net);

  /// Restricts recording to the given kinds (empty mask = record all;
  /// that is the default).  Packets excluded by the filter count in
  /// total_seen() and filtered(), not in dropped_records().
  void set_kind_filter(std::initializer_list<PacketKind> kinds);
  void clear_kind_filter() noexcept { kind_mask_ = 0; }
  [[nodiscard]] bool accepts(PacketKind kind) const noexcept {
    return kind_mask_ == 0 ||
           (kind_mask_ >> static_cast<unsigned>(kind)) & 1u;
  }

  /// Lane shards concatenated in lane order, then stably sorted by
  /// (time, sender): the canonical merged stream.
  [[nodiscard]] std::vector<TraceRecord> merged_records() const;

  [[nodiscard]] std::uint64_t total_seen() const noexcept;
  [[nodiscard]] std::uint64_t recorded() const noexcept;
  /// Records evicted because a bounded shard overflowed.  (Filtered
  /// packets are never records, so they are not "dropped".)
  [[nodiscard]] std::uint64_t dropped_records() const noexcept;
  /// Packets excluded by the kind filter.
  [[nodiscard]] std::uint64_t filtered() const noexcept;
  /// Packets seen but not retained, for any reason (eviction or filter).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_records() + filtered();
  }

  /// Transmission count per packet kind over the retained window.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  histogram_by_kind() const;

  /// One JSON object per line: {"t":..., "sender":..., "kind":"...",
  /// "bytes":...}.  When any packets were evicted or filtered, a final
  /// summary line {"type":"trace_drops","seen":...,"recorded":...,
  /// "dropped":...,"filtered":...} reports the gap so consumers know the
  /// dump is partial.
  void dump_jsonl(std::ostream& os) const;

  void clear() noexcept;

 private:
  struct alignas(64) Shard {
    std::vector<TraceRecord> records;
    std::uint64_t seen = 0;
    std::uint64_t dropped = 0;
    std::uint64_t filtered = 0;
  };

  std::size_t capacity_;
  std::vector<Shard> shards_;
  /// Bit i set = record PacketKind(i); all-zero = no filter.
  std::uint32_t kind_mask_ = 0;
};

}  // namespace ldke::net
