#pragma once
/// \file packet_trace.hpp
/// Packet-level trace recorder: hooks the channel sniffer and keeps a
/// bounded in-memory log of every transmission (time, sender, kind,
/// size).  Dumps as JSON-lines for offline inspection — the debugging
/// affordance SensorSimII's trace files provided.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace ldke::net {

struct TraceRecord {
  std::int64_t time_ns = 0;
  NodeId sender = kNoNode;
  PacketKind kind = PacketKind::kData;
  std::uint32_t size_bytes = 0;
};

/// Human-readable name of a packet kind ("hello", "data", ...).
[[nodiscard]] std::string_view packet_kind_name(PacketKind kind) noexcept;

class PacketTrace {
 public:
  /// Keeps at most \p capacity records (oldest evicted first).
  explicit PacketTrace(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  /// Starts recording all transmissions on \p net (owns the sniffer
  /// hook; replaces any previous one).
  void attach(Network& net);

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t total_seen() const noexcept {
    return total_seen_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_seen_ -
           static_cast<std::uint64_t>(records_.size());
  }

  /// Transmission count per packet kind over the retained window.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  histogram_by_kind() const;

  /// One JSON object per line: {"t":..., "sender":..., "kind":"...",
  /// "bytes":...}.
  void dump_jsonl(std::ostream& os) const;

  void clear() noexcept {
    records_.clear();
    total_seen_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> records_;
  std::uint64_t total_seen_ = 0;
};

}  // namespace ldke::net
