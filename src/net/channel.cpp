#include "net/channel.hpp"

namespace ldke::net {

Channel::Channel(sim::Simulator& sim, const Topology& topology,
                 EnergyModel& energy, sim::TraceCounters& counters,
                 ChannelConfig config)
    : sim_(sim),
      topology_(topology),
      energy_(energy),
      counters_(counters),
      config_(config),
      ctr_tx_(counters.handle("channel.tx")),
      ctr_tx_external_(counters.handle("channel.tx_external")),
      ctr_delivered_(counters.handle("channel.delivered")),
      ctr_lost_(counters.handle("channel.lost")),
      ctr_collision_(counters.handle("channel.collision")),
      ctr_csma_defer_(counters.handle("channel.csma_defer")),
      ctr_csma_drop_(counters.handle("channel.csma_drop")) {}

sim::SimTime Channel::tx_duration(const Packet& packet) const noexcept {
  const double bits = static_cast<double>(packet.size_bytes()) * 8.0;
  return sim::SimTime::from_seconds(bits / config_.bitrate_bps);
}

std::shared_ptr<bool> Channel::track_reception(NodeId receiver,
                                               sim::SimTime when) {
  auto corrupted = std::make_shared<bool>(false);
  auto& active = active_receptions_[receiver];
  // Prune receptions that already finished (their events have run).
  std::erase_if(active,
                [now = sim_.now()](const Reception& r) { return r.end <= now; });
  for (Reception& ongoing : active) {
    // Any temporal overlap corrupts both frames (no capture effect).
    *ongoing.corrupted = true;
    *corrupted = true;
  }
  active.push_back(Reception{when, corrupted});
  return corrupted;
}

void Channel::schedule_delivery(NodeId receiver, const Packet& packet,
                                sim::SimTime when) {
  if (config_.loss_probability > 0.0 &&
      sim_.rng().bernoulli(config_.loss_probability)) {
    ++losses_;
    counters_.increment(ctr_lost_);
    return;
  }
  std::shared_ptr<bool> corrupted;
  if (config_.model_collisions) {
    corrupted = track_reception(receiver, when);
  }
  // Carrier sensing: an incoming frame keeps the receiver's medium busy
  // until it fully arrives.
  if (config_.csma) note_busy(receiver, when);
  // Capturing the packet by value only bumps the payload refcount — the
  // bytes are immutable and shared across every receiver's event.
  sim_.schedule_at(when, [this, receiver, packet, corrupted] {
    // The radio listened either way.
    energy_.charge_rx(receiver, packet.size_bytes());
    if (corrupted && *corrupted) {
      ++collisions_;
      counters_.increment(ctr_collision_);
      return;
    }
    ++rx_count_;
    counters_.increment(ctr_delivered_);
    if (deliver_) deliver_(receiver, packet);
  });
}

void Channel::note_busy(NodeId node, sim::SimTime until) {
  auto& busy = busy_until_[node];
  if (until > busy) busy = until;
}

void Channel::fan_out(const Packet& packet, std::span<const NodeId> receivers,
                      sim::SimTime arrival,
                      sim::TraceCounters::Handle tx_counter) {
  if (sniffer_) sniffer_(packet);
  ++tx_count_;
  tx_bytes_ += packet.size_bytes();
  const auto kind = static_cast<std::size_t>(packet.kind);
  if (kind < kPacketKindCount) {
    ++tx_packets_by_kind_[kind];
    tx_bytes_by_kind_[kind] += packet.size_bytes();
  }
  counters_.increment(tx_counter);
  for (NodeId receiver : receivers) {
    schedule_delivery(receiver, packet, arrival);
  }
}

void Channel::emit_now(const Packet& packet) {
  const sim::SimTime tx_end = sim_.now() + tx_duration(packet);
  energy_.charge_tx(packet.sender, packet.size_bytes(), topology_.range());
  if (config_.csma) note_busy(packet.sender, tx_end);
  fan_out(packet, topology_.neighbors(packet.sender),
          tx_end + config_.propagation_delay, ctr_tx_);
}

void Channel::csma_transmit(Packet packet, int attempt) {
  const auto it = busy_until_.find(packet.sender);
  const bool busy = it != busy_until_.end() && it->second > sim_.now();
  if (!busy) {
    emit_now(packet);
    return;
  }
  if (attempt >= config_.csma_max_attempts) {
    ++csma_drops_;
    counters_.increment(ctr_csma_drop_);
    return;
  }
  ++csma_deferrals_;
  counters_.increment(ctr_csma_defer_);
  const sim::SimTime resume =
      it->second + sim::SimTime::from_seconds(
                       sim_.rng().exponential(1.0 / config_.csma_backoff_mean_s));
  sim_.schedule_at(resume, [this, packet = std::move(packet), attempt] {
    csma_transmit(packet, attempt + 1);
  });
}

void Channel::broadcast(const Packet& packet) {
  if (config_.csma) {
    csma_transmit(packet, 0);
  } else {
    emit_now(packet);
  }
}

void Channel::broadcast_from(Vec2 position, double radius,
                             const Packet& packet) {
  const std::vector<NodeId> receivers = topology_.nodes_within(position, radius);
  fan_out(packet, receivers,
          sim_.now() + tx_duration(packet) + config_.propagation_delay,
          ctr_tx_external_);
}

}  // namespace ldke::net
