#include "net/channel.hpp"

#include <cassert>

namespace ldke::net {

void Channel::LaneTallies::resolve_handles(sim::TraceCounters& counters) {
  ctr_tx = counters.handle("channel.tx");
  ctr_tx_external = counters.handle("channel.tx_external");
  ctr_delivered = counters.handle("channel.delivered");
  ctr_lost = counters.handle("channel.lost");
  ctr_collision = counters.handle("channel.collision");
  ctr_csma_defer = counters.handle("channel.csma_defer");
  ctr_csma_drop = counters.handle("channel.csma_drop");
  ctr_dropped_gone = counters.handle("pkt.dropped_gone");
  ctr_dropped_partition = counters.handle("pkt.dropped_partition");
}

Channel::Channel(sim::Simulator& sim, const Topology& topology,
                 EnergyModel& energy, sim::TraceCounters& counters,
                 ChannelConfig config)
    : sim_(sim),
      topology_(topology),
      energy_(energy),
      counters_(counters),
      config_(config),
      tallies_(1) {
  tallies_[0].resolve_handles(counters);
}

sim::SimTime Channel::tx_duration(const Packet& packet) const noexcept {
  const double bits = static_cast<double>(packet.size_bytes()) * 8.0;
  return sim::SimTime::from_seconds(bits / config_.bitrate_bps);
}

sim::SimTime Channel::min_latency() const noexcept {
  const double overhead_bits = static_cast<double>(kFrameOverheadBytes) * 8.0;
  return sim::SimTime::from_seconds(overhead_bits / config_.bitrate_bps) +
         config_.propagation_delay;
}

void Channel::enable_lanes(sim::ShardedKernel& kernel,
                           const std::vector<std::uint32_t>& lane_of,
                           std::span<sim::TraceCounters* const> lane_counters) {
  assert(lane_counters.size() == kernel.lane_count());
  assert(config_.loss_probability == 0.0 && !config_.model_collisions &&
         !config_.csma && "lane-incompatible channel features enabled");
  kernel_ = &kernel;
  lane_of_ = &lane_of;
  tallies_.clear();
  tallies_.resize(kernel.lane_count());
  for (std::size_t l = 0; l < tallies_.size(); ++l) {
    tallies_[l].resolve_handles(*lane_counters[l]);
  }
}

Channel::KindArray Channel::tx_packets_by_kind() const noexcept {
  KindArray out{};
  for (const LaneTallies& t : tallies_) {
    for (std::size_t k = 0; k < kPacketKindCount; ++k) {
      out[k] += t.tx_packets_by_kind[k];
    }
  }
  return out;
}

Channel::KindArray Channel::tx_bytes_by_kind() const noexcept {
  KindArray out{};
  for (const LaneTallies& t : tallies_) {
    for (std::size_t k = 0; k < kPacketKindCount; ++k) {
      out[k] += t.tx_bytes_by_kind[k];
    }
  }
  return out;
}

std::shared_ptr<bool> Channel::track_reception(NodeId receiver,
                                               sim::SimTime when) {
  auto corrupted = std::make_shared<bool>(false);
  auto& active = active_receptions_[receiver];
  // Prune receptions that already finished (their events have run).
  std::erase_if(active,
                [now = sim_.now()](const Reception& r) { return r.end <= now; });
  for (Reception& ongoing : active) {
    // Any temporal overlap corrupts both frames (no capture effect).
    *ongoing.corrupted = true;
    *corrupted = true;
  }
  active.push_back(Reception{when, corrupted});
  return corrupted;
}

void Channel::schedule_delivery(NodeId receiver, const Packet& packet,
                                sim::SimTime when) {
  if (config_.loss_probability > 0.0 &&
      sim_.rng().bernoulli(config_.loss_probability)) {
    LaneTallies& t = tallies();
    ++t.losses;
    counters_.increment(t.ctr_lost);
    return;
  }
  std::shared_ptr<bool> corrupted;
  if (config_.model_collisions) {
    corrupted = track_reception(receiver, when);
  }
  // Carrier sensing: an incoming frame keeps the receiver's medium busy
  // until it fully arrives.
  if (config_.csma) note_busy(receiver, when);
  // Capturing the packet by value only bumps the payload refcount — the
  // bytes are immutable and shared across every receiver's event.
  auto deliver = [this, receiver, packet, corrupted] {
    // A node that left or slept between transmission and arrival hears
    // nothing: no rx energy, no dispatch into its (possibly recycled)
    // slot — the frame just dies on the air.
    if (delivery_gate_ && !delivery_gate_(receiver)) {
      LaneTallies& gt = tallies();
      ++gt.dropped_gone;
      counters_.increment(gt.ctr_dropped_gone);
      return;
    }
    // The radio listened either way.  Runs on the receiver's lane, so
    // the tallies cell and the per-node energy slot are lane-local.
    energy_.charge_rx(receiver, packet.size_bytes());
    LaneTallies& t = tallies();
    if (corrupted && *corrupted) {
      ++t.collisions;
      counters_.increment(t.ctr_collision);
      return;
    }
    ++t.rx_count;
    counters_.increment(t.ctr_delivered);
    if (deliver_) deliver_(receiver, packet);
  };
  if (kernel_ != nullptr) {
    const std::uint32_t dst = (*lane_of_)[receiver];
    if (dst != sim::ShardedKernel::current_lane()) {
      // Halo delivery: buffered in the per-lane-pair outbox and merged
      // at the next window barrier in canonical order.  `when` satisfies
      // the lookahead contract because it is at least min_latency()
      // after the transmission.
      kernel_->schedule_cross(dst, when, std::move(deliver));
      return;
    }
  }
  sim_.schedule_at(when, std::move(deliver));
}

void Channel::note_busy(NodeId node, sim::SimTime until) {
  auto& busy = busy_until_[node];
  if (until > busy) busy = until;
}

void Channel::fan_out(const Packet& packet, std::span<const NodeId> receivers,
                      sim::SimTime arrival,
                      sim::TraceCounters::Handle LaneTallies::* tx_counter) {
  if (sniffer_) sniffer_(packet);
  LaneTallies& t = tallies();
  ++t.tx_count;
  t.tx_bytes += packet.size_bytes();
  const auto kind = static_cast<std::size_t>(packet.kind);
  if (kind < kPacketKindCount) {
    ++t.tx_packets_by_kind[kind];
    t.tx_bytes_by_kind[kind] += packet.size_bytes();
  }
  counters_.increment(t.*tx_counter);
  for (NodeId receiver : receivers) {
    // Link validity is a transmit-time fact (a partition wall blocks the
    // signal itself), so gate before the per-receiver loss draw.
    if (link_gate_ && !link_gate_(packet.sender, receiver)) {
      ++t.dropped_partition;
      counters_.increment(t.ctr_dropped_partition);
      continue;
    }
    schedule_delivery(receiver, packet, arrival);
  }
}

void Channel::emit_now(const Packet& packet) {
  const sim::SimTime tx_end = sim_.now() + tx_duration(packet);
  energy_.charge_tx(packet.sender, packet.size_bytes(), topology_.range());
  if (config_.csma) note_busy(packet.sender, tx_end);
  fan_out(packet, topology_.neighbors(packet.sender),
          tx_end + config_.propagation_delay, &LaneTallies::ctr_tx);
}

void Channel::csma_transmit(Packet packet, int attempt) {
  const auto it = busy_until_.find(packet.sender);
  const bool busy = it != busy_until_.end() && it->second > sim_.now();
  if (!busy) {
    emit_now(packet);
    return;
  }
  LaneTallies& t = tallies();
  if (attempt >= config_.csma_max_attempts) {
    ++t.csma_drops;
    counters_.increment(t.ctr_csma_drop);
    return;
  }
  ++t.csma_deferrals;
  counters_.increment(t.ctr_csma_defer);
  const sim::SimTime resume =
      it->second + sim::SimTime::from_seconds(
                       sim_.rng().exponential(1.0 / config_.csma_backoff_mean_s));
  sim_.schedule_at(resume, [this, packet = std::move(packet), attempt] {
    csma_transmit(packet, attempt + 1);
  });
}

void Channel::fan_out_batched(const Packet& packet,
                              std::span<const NodeId> receivers,
                              sim::SimTime arrival) {
  if (sniffer_) sniffer_(packet);
  LaneTallies& t = tallies();
  ++t.tx_count;
  t.tx_bytes += packet.size_bytes();
  const auto kind = static_cast<std::size_t>(packet.kind);
  if (kind < kPacketKindCount) {
    ++t.tx_packets_by_kind[kind];
    t.tx_bytes_by_kind[kind] += packet.size_bytes();
  }
  counters_.increment(t.ctr_tx);

  // Schedule-time decisions happen per receiver in the scalar order, so
  // the loss RNG stream and collision windows match N schedule_delivery
  // calls exactly; only the event count changes.
  struct PendingDelivery {
    NodeId receiver;
    std::shared_ptr<bool> corrupted;  // null unless collisions modeled
  };
  const std::size_t lane_count = tallies_.size();
  std::vector<std::vector<PendingDelivery>> per_lane(lane_count);
  for (NodeId receiver : receivers) {
    if (link_gate_ && !link_gate_(packet.sender, receiver)) {
      ++t.dropped_partition;
      counters_.increment(t.ctr_dropped_partition);
      continue;
    }
    if (config_.loss_probability > 0.0 &&
        sim_.rng().bernoulli(config_.loss_probability)) {
      ++t.losses;
      counters_.increment(t.ctr_lost);
      continue;
    }
    std::shared_ptr<bool> corrupted;
    if (config_.model_collisions) {
      corrupted = track_reception(receiver, arrival);
    }
    const std::size_t dst = kernel_ != nullptr ? (*lane_of_)[receiver] : 0;
    per_lane[dst].push_back(PendingDelivery{receiver, std::move(corrupted)});
  }

  for (std::size_t lane = 0; lane < lane_count; ++lane) {
    if (per_lane[lane].empty()) continue;
    auto deliver = [this, packet, pending = std::move(per_lane[lane])] {
      // Runs on the destination lane: tallies and energy are lane-local.
      std::vector<NodeId> survivors;
      survivors.reserve(pending.size());
      LaneTallies& lt = tallies();
      for (const PendingDelivery& d : pending) {
        if (delivery_gate_ && !delivery_gate_(d.receiver)) {
          ++lt.dropped_gone;
          counters_.increment(lt.ctr_dropped_gone);
          continue;
        }
        energy_.charge_rx(d.receiver, packet.size_bytes());
        if (d.corrupted && *d.corrupted) {
          ++lt.collisions;
          counters_.increment(lt.ctr_collision);
          continue;
        }
        ++lt.rx_count;
        counters_.increment(lt.ctr_delivered);
        survivors.push_back(d.receiver);
      }
      if (survivors.empty()) return;
      if (batch_deliver_) {
        batch_deliver_(survivors, packet);
      } else if (deliver_) {
        for (NodeId r : survivors) deliver_(r, packet);
      }
    };
    if (kernel_ != nullptr &&
        static_cast<std::uint32_t>(lane) != sim::ShardedKernel::current_lane()) {
      kernel_->schedule_cross(static_cast<std::uint32_t>(lane), arrival,
                              std::move(deliver));
    } else {
      sim_.schedule_at(arrival, std::move(deliver));
    }
  }
}

void Channel::deliver_batch(const PacketBatch& batch) {
  if (config_.csma) {
    // Medium sensing serializes transmissions through per-sender busy
    // state; coalescing would reorder the backoff draws.
    for (std::size_t i = 0; i < batch.size(); ++i) broadcast(batch.packet(i));
    return;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Packet packet = batch.packet(i);
    const sim::SimTime tx_end = sim_.now() + tx_duration(packet);
    energy_.charge_tx(packet.sender, packet.size_bytes(), topology_.range());
    fan_out_batched(packet, topology_.neighbors(packet.sender),
                    tx_end + config_.propagation_delay);
  }
}

void Channel::broadcast(const Packet& packet) {
  if (config_.csma) {
    csma_transmit(packet, 0);
  } else {
    emit_now(packet);
  }
}

void Channel::broadcast_from(Vec2 position, double radius,
                             const Packet& packet) {
  const std::vector<NodeId> receivers = topology_.nodes_within(position, radius);
  fan_out(packet, receivers,
          sim_.now() + tx_duration(packet) + config_.propagation_delay,
          &LaneTallies::ctr_tx_external);
}

}  // namespace ldke::net
