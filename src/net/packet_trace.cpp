#include "net/packet_trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>

namespace ldke::net {

std::string_view packet_kind_name(PacketKind kind) noexcept {
  switch (kind) {
    case PacketKind::kHello: return "hello";
    case PacketKind::kLinkAdvert: return "link_advert";
    case PacketKind::kData: return "data";
    case PacketKind::kBeacon: return "beacon";
    case PacketKind::kRevoke: return "revoke";
    case PacketKind::kJoin: return "join";
    case PacketKind::kJoinReply: return "join_reply";
    case PacketKind::kRefresh: return "refresh";
    case PacketKind::kBaseline: return "baseline";
    case PacketKind::kReclusterHello: return "recluster_hello";
    case PacketKind::kReclusterLink: return "recluster_link";
    case PacketKind::kAuthBroadcast: return "auth_broadcast";
    case PacketKind::kKeyDisclosure: return "key_disclosure";
    case PacketKind::kInterest: return "interest";
    case PacketKind::kDiffData: return "diff_data";
    case PacketKind::kReinforce: return "reinforce";
  }
  return "unknown";
}

PacketTrace::PacketTrace(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), shards_(1) {}

void PacketTrace::attach(Network& net) {
  if (net.lane_count() > shards_.size()) shards_.resize(net.lane_count());
  net.channel().set_sniffer([this, &net](const Packet& pkt) {
    Shard& shard = shards_[net.record_lane() < shards_.size()
                               ? net.record_lane()
                               : 0];
    ++shard.seen;
    if (!accepts(pkt.kind)) {
      ++shard.filtered;
      return;
    }
    if (shard.records.size() >= capacity_) {
      const auto evicted = capacity_ / 4 + 1;
      shard.records.erase(
          shard.records.begin(),
          shard.records.begin() + static_cast<std::ptrdiff_t>(evicted));
      shard.dropped += evicted;
    }
    shard.records.push_back(
        TraceRecord{net.sim().now().ns(), pkt.sender, pkt.kind,
                    static_cast<std::uint32_t>(pkt.size_bytes())});
  });
}

void PacketTrace::set_kind_filter(std::initializer_list<PacketKind> kinds) {
  kind_mask_ = 0;
  for (PacketKind kind : kinds) {
    kind_mask_ |= 1u << static_cast<unsigned>(kind);
  }
}

std::vector<TraceRecord> PacketTrace::merged_records() const {
  std::vector<TraceRecord> out;
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.records.size();
  out.reserve(total);
  for (const Shard& shard : shards_) {
    out.insert(out.end(), shard.records.begin(), shard.records.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
                     return a.sender < b.sender;
                   });
  return out;
}

std::uint64_t PacketTrace::total_seen() const noexcept {
  std::uint64_t n = 0;
  for (const Shard& shard : shards_) n += shard.seen;
  return n;
}

std::uint64_t PacketTrace::recorded() const noexcept {
  std::uint64_t n = 0;
  for (const Shard& shard : shards_) n += shard.records.size();
  return n;
}

std::uint64_t PacketTrace::dropped_records() const noexcept {
  std::uint64_t n = 0;
  for (const Shard& shard : shards_) n += shard.dropped;
  return n;
}

std::uint64_t PacketTrace::filtered() const noexcept {
  std::uint64_t n = 0;
  for (const Shard& shard : shards_) n += shard.filtered;
  return n;
}

std::vector<std::pair<std::string, std::uint64_t>>
PacketTrace::histogram_by_kind() const {
  std::map<std::string, std::uint64_t> counts;
  for (const Shard& shard : shards_) {
    for (const TraceRecord& r : shard.records) {
      ++counts[std::string{packet_kind_name(r.kind)}];
    }
  }
  return {counts.begin(), counts.end()};
}

void PacketTrace::dump_jsonl(std::ostream& os) const {
  for (const TraceRecord& r : merged_records()) {
    os << "{\"t\":" << r.time_ns << ",\"sender\":" << r.sender
       << ",\"kind\":\"" << packet_kind_name(r.kind)
       << "\",\"bytes\":" << r.size_bytes << "}\n";
  }
  if (dropped_records() > 0 || filtered() > 0) {
    os << "{\"type\":\"trace_drops\",\"seen\":" << total_seen()
       << ",\"recorded\":" << recorded()
       << ",\"dropped\":" << dropped_records()
       << ",\"filtered\":" << filtered() << "}\n";
  }
}

void PacketTrace::clear() noexcept {
  for (Shard& shard : shards_) {
    shard.records.clear();
    shard.seen = 0;
    shard.dropped = 0;
    shard.filtered = 0;
  }
}

}  // namespace ldke::net
