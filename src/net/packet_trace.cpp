#include "net/packet_trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>

namespace ldke::net {

std::string_view packet_kind_name(PacketKind kind) noexcept {
  switch (kind) {
    case PacketKind::kHello: return "hello";
    case PacketKind::kLinkAdvert: return "link_advert";
    case PacketKind::kData: return "data";
    case PacketKind::kBeacon: return "beacon";
    case PacketKind::kRevoke: return "revoke";
    case PacketKind::kJoin: return "join";
    case PacketKind::kJoinReply: return "join_reply";
    case PacketKind::kRefresh: return "refresh";
    case PacketKind::kBaseline: return "baseline";
    case PacketKind::kReclusterHello: return "recluster_hello";
    case PacketKind::kReclusterLink: return "recluster_link";
    case PacketKind::kAuthBroadcast: return "auth_broadcast";
    case PacketKind::kKeyDisclosure: return "key_disclosure";
    case PacketKind::kInterest: return "interest";
    case PacketKind::kDiffData: return "diff_data";
    case PacketKind::kReinforce: return "reinforce";
  }
  return "unknown";
}

void PacketTrace::attach(Network& net) {
  net.channel().set_sniffer([this, &net](const Packet& pkt) {
    ++total_seen_;
    if (!accepts(pkt.kind)) {
      ++filtered_;
      return;
    }
    if (records_.size() >= capacity_) {
      const auto evicted = capacity_ / 4 + 1;
      records_.erase(records_.begin(),
                     records_.begin() + static_cast<std::ptrdiff_t>(evicted));
      dropped_records_ += evicted;
    }
    records_.push_back(TraceRecord{net.sim().now().ns(), pkt.sender,
                                   pkt.kind,
                                   static_cast<std::uint32_t>(pkt.size_bytes())});
  });
}

void PacketTrace::set_kind_filter(std::initializer_list<PacketKind> kinds) {
  kind_mask_ = 0;
  for (PacketKind kind : kinds) {
    kind_mask_ |= 1u << static_cast<unsigned>(kind);
  }
}

std::vector<std::pair<std::string, std::uint64_t>>
PacketTrace::histogram_by_kind() const {
  std::map<std::string, std::uint64_t> counts;
  for (const TraceRecord& r : records_) {
    ++counts[std::string{packet_kind_name(r.kind)}];
  }
  return {counts.begin(), counts.end()};
}

void PacketTrace::dump_jsonl(std::ostream& os) const {
  for (const TraceRecord& r : records_) {
    os << "{\"t\":" << r.time_ns << ",\"sender\":" << r.sender
       << ",\"kind\":\"" << packet_kind_name(r.kind)
       << "\",\"bytes\":" << r.size_bytes << "}\n";
  }
  if (dropped_records_ > 0 || filtered_ > 0) {
    os << "{\"type\":\"trace_drops\",\"seen\":" << total_seen_
       << ",\"recorded\":" << records_.size()
       << ",\"dropped\":" << dropped_records_
       << ",\"filtered\":" << filtered_ << "}\n";
  }
}

}  // namespace ldke::net
