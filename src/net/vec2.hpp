#pragma once
/// \file vec2.hpp
/// 2-D points for node placement.

#include <cmath>

namespace ldke::net {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr bool operator==(Vec2, Vec2) noexcept = default;
};

[[nodiscard]] inline double distance_squared(Vec2 a, Vec2 b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept {
  return std::sqrt(distance_squared(a, b));
}

}  // namespace ldke::net
