#pragma once
/// \file energy.hpp
/// First-order radio energy model (Heinzelman et al.):
///   E_tx(k bits, d) = E_elec·k + ε_amp·k·d²
///   E_rx(k bits)    = E_elec·k
/// The paper's energy argument — one broadcast transmission per message
/// versus one per neighbor — is quantified through this model.

#include <cstddef>
#include <vector>

#include "net/topology.hpp"

namespace ldke::net {

struct EnergyConfig {
  double e_elec_j_per_bit = 50e-9;       ///< electronics energy per bit
  double e_amp_j_per_bit_m2 = 100e-12;   ///< amplifier energy per bit·m²
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyConfig config = {}) : config_(config) {}

  /// Ensures accounting exists for ids < \p count.
  void resize(std::size_t count);

  void charge_tx(NodeId id, std::size_t bytes, double range_m);
  void charge_rx(NodeId id, std::size_t bytes);

  [[nodiscard]] double consumed_j(NodeId id) const noexcept;
  [[nodiscard]] double total_j() const noexcept;
  [[nodiscard]] double tx_j() const noexcept { return tx_total_; }
  [[nodiscard]] double rx_j() const noexcept { return rx_total_; }

  [[nodiscard]] const EnergyConfig& config() const noexcept { return config_; }

 private:
  EnergyConfig config_;
  std::vector<double> per_node_;
  double tx_total_ = 0.0;
  double rx_total_ = 0.0;
};

}  // namespace ldke::net
