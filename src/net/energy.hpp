#pragma once
/// \file energy.hpp
/// First-order radio energy model (Heinzelman et al.):
///   E_tx(k bits, d) = E_elec·k + ε_amp·k·d²
///   E_rx(k bits)    = E_elec·k
/// The paper's energy argument — one broadcast transmission per message
/// versus one per neighbor — is quantified through this model.

#include <cstddef>
#include <vector>

#include "net/topology.hpp"

namespace ldke::net {

struct EnergyConfig {
  double e_elec_j_per_bit = 50e-9;       ///< electronics energy per bit
  double e_amp_j_per_bit_m2 = 100e-12;   ///< amplifier energy per bit·m²
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyConfig config = {}) : config_(config) {}

  /// Ensures accounting exists for ids < \p count.  Under a sharded
  /// kernel the network pre-sizes at deploy time, so the lazy resize in
  /// charge_*() never fires from a lane thread.
  void resize(std::size_t count);

  void charge_tx(NodeId id, std::size_t bytes, double range_m);
  void charge_rx(NodeId id, std::size_t bytes);

  [[nodiscard]] double consumed_j(NodeId id) const noexcept;

  /// Totals are folded on demand in node-id order — never kept as
  /// running sums.  A node's charges all happen on its home lane, so the
  /// per-node cells are race-free, and a fixed summation order makes the
  /// totals bit-identical across lane counts (floating-point addition is
  /// not associative; summing in arrival order would tie the result to
  /// thread scheduling).
  [[nodiscard]] double total_j() const noexcept;
  [[nodiscard]] double tx_j() const noexcept;
  [[nodiscard]] double rx_j() const noexcept;

  [[nodiscard]] const EnergyConfig& config() const noexcept { return config_; }

 private:
  EnergyConfig config_;
  std::vector<double> tx_;  ///< per-node transmit energy, id-indexed
  std::vector<double> rx_;  ///< per-node receive energy, id-indexed
};

}  // namespace ldke::net
