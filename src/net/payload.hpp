#pragma once
/// \file payload.hpp
/// Immutable, reference-counted packet payload.  A broadcast reaches
/// every radio neighbor, so the channel used to deep-copy the payload
/// once per receiver at delivery-scheduling time — at density 20 that is
/// 20 allocations per transmission before a single byte is decrypted.
/// PayloadRef freezes the bytes at send time; every scheduled delivery,
/// sniffer record and forwarded re-broadcast then captures a refcount
/// bump instead of a copy.
///
/// Layout: a PayloadRef is a single pointer to a PayloadBlock whose
/// bytes follow it contiguously — header, length and data share one
/// cache line for short payloads.  The block lives either in its own
/// allocation or inside a PayloadArena chunk (see payload_arena.hpp);
/// refcounting happens on the block's owner header either way, so the
/// ref neither knows nor cares which.  At 8 bytes a PayloadRef keeps
/// Packet at 16 bytes and channel-delivery captures inside EventFn's
/// inline budget.  Receivers get a read-only view; anything that wants
/// to mutate (fuzzers, forgery harnesses) materializes its own buffer
/// via to_bytes().

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>

#include "net/payload_arena.hpp"
#include "support/hex.hpp"

namespace ldke::net {

class PayloadRef {
 public:
  PayloadRef() = default;

  /// Copies \p bytes once into a fresh shared block (arena-backed when a
  /// PayloadArena::Scope is active on this thread).
  PayloadRef(support::Bytes&& bytes) {  // NOLINT(google-explicit-constructor)
    if (!bytes.empty()) adopt(bytes.data(), bytes.size());
  }

  PayloadRef(const support::Bytes& bytes) {  // NOLINT(google-explicit-constructor)
    if (!bytes.empty()) adopt(bytes.data(), bytes.size());
  }

  /// Copies an arbitrary byte view once into a fresh shared block.
  [[nodiscard]] static PayloadRef copy_of(std::span<const std::uint8_t> data) {
    PayloadRef ref;
    if (!data.empty()) ref.adopt(data.data(), data.size());
    return ref;
  }

  // Copy/move of a PayloadRef itself is a refcount operation, never a
  // byte copy — that is the whole point.
  PayloadRef(const PayloadRef& other) noexcept : block_(other.block_) {
    retain();
  }
  PayloadRef(PayloadRef&& other) noexcept
      : block_(std::exchange(other.block_, nullptr)) {}
  PayloadRef& operator=(const PayloadRef& other) noexcept {
    if (this != &other) {
      release();
      block_ = other.block_;
      retain();
    }
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& other) noexcept {
    if (this != &other) {
      release();
      block_ = std::exchange(other.block_, nullptr);
    }
    return *this;
  }
  ~PayloadRef() { release(); }

  [[nodiscard]] std::size_t size() const noexcept {
    return block_ ? block_->size : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return block_ ? block_->bytes() : nullptr;
  }
  [[nodiscard]] const std::uint8_t* begin() const noexcept { return data(); }
  [[nodiscard]] const std::uint8_t* end() const noexcept {
    return data() + size();
  }
  [[nodiscard]] std::uint8_t operator[](std::size_t i) const noexcept {
    return block_->bytes()[i];
  }

  /// Read-only view of the bytes (what the codec layer decodes from).
  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept {
    return {data(), size()};
  }
  operator std::span<const std::uint8_t>() const noexcept {  // NOLINT
    return view();
  }

  /// Materializes a private mutable copy (attack harnesses, fuzzers).
  [[nodiscard]] support::Bytes to_bytes() const {
    return support::Bytes{begin(), end()};
  }

  /// True when both refs point at the same shared block (no copy was
  /// made between them) — the zero-copy assertion used by tests.
  [[nodiscard]] bool shares_buffer_with(const PayloadRef& other) const noexcept {
    return block_ == other.block_;
  }

  /// Content equality (bytes, not buffer identity).
  friend bool operator==(const PayloadRef& a, const PayloadRef& b) noexcept {
    if (a.block_ == b.block_) return true;
    const auto va = a.view();
    const auto vb = b.view();
    return va.size() == vb.size() &&
           std::equal(va.begin(), va.end(), vb.begin());
  }
  friend bool operator==(const PayloadRef& a,
                         const support::Bytes& b) noexcept {
    const auto va = a.view();
    return va.size() == b.size() && std::equal(va.begin(), va.end(), b.begin());
  }

  /// Process-wide count of shared blocks created (i.e. payload byte
  /// allocations, arena-backed or not).  The broadcast microbenchmark
  /// and channel tests use deltas of this to pin "O(1) allocations per
  /// transmission".
  [[nodiscard]] static std::uint64_t buffers_created() noexcept {
    return alloc_count().load(std::memory_order_relaxed);
  }

 private:
  void adopt(const std::uint8_t* bytes, std::size_t n) {
    detail::PayloadBlock* block;
    if (PayloadArena* arena = PayloadArena::current()) {
      block = arena->allocate(n);
    } else {
      void* raw = ::operator new(sizeof(detail::PayloadOwner) +
                                 sizeof(detail::PayloadBlock) + n);
      auto* owner = ::new (raw) detail::PayloadOwner{{1}};
      block = ::new (owner + 1) detail::PayloadBlock{
          owner, static_cast<std::uint32_t>(n)};
    }
    std::memcpy(block->bytes(), bytes, n);
    block_ = block;
    alloc_count().fetch_add(1, std::memory_order_relaxed);
  }

  void retain() const noexcept {
    if (block_) {
      block_->owner->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void release() noexcept {
    if (block_ == nullptr) return;
    detail::PayloadOwner* owner = block_->owner;
    if (owner->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ::operator delete(owner);
    }
    block_ = nullptr;
  }

  static std::atomic<std::uint64_t>& alloc_count() noexcept {
    static std::atomic<std::uint64_t> count{0};
    return count;
  }

  const detail::PayloadBlock* block_ = nullptr;
};

}  // namespace ldke::net
