#pragma once
/// \file payload.hpp
/// Immutable, reference-counted packet payload.  A broadcast reaches
/// every radio neighbor, so the channel used to deep-copy the payload
/// once per receiver at delivery-scheduling time — at density 20 that is
/// 20 allocations per transmission before a single byte is decrypted.
/// PayloadRef freezes the bytes at send time behind a shared_ptr; every
/// scheduled delivery, sniffer record and forwarded re-broadcast then
/// captures a refcount bump instead of a copy.  Receivers get a
/// read-only view; anything that wants to mutate (fuzzers, forgery
/// harnesses) materializes its own buffer via to_bytes().

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "support/hex.hpp"

namespace ldke::net {

class PayloadRef {
 public:
  PayloadRef() = default;

  /// Adopts \p bytes as the shared immutable buffer (one allocation —
  /// the control block; the byte storage moves in).
  PayloadRef(support::Bytes&& bytes) {  // NOLINT(google-explicit-constructor)
    if (!bytes.empty()) adopt(std::move(bytes));
  }

  /// Copies \p bytes once into a fresh shared buffer.
  PayloadRef(const support::Bytes& bytes) {  // NOLINT(google-explicit-constructor)
    if (!bytes.empty()) adopt(support::Bytes{bytes});
  }

  /// Copies an arbitrary byte view once into a fresh shared buffer.
  [[nodiscard]] static PayloadRef copy_of(std::span<const std::uint8_t> data) {
    return PayloadRef{support::Bytes{data.begin(), data.end()}};
  }

  // Copy/move of a PayloadRef itself is a refcount operation, never a
  // byte copy — that is the whole point.
  PayloadRef(const PayloadRef&) = default;
  PayloadRef(PayloadRef&&) noexcept = default;
  PayloadRef& operator=(const PayloadRef&) = default;
  PayloadRef& operator=(PayloadRef&&) noexcept = default;

  [[nodiscard]] std::size_t size() const noexcept {
    return buf_ ? buf_->size() : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return buf_ ? buf_->data() : nullptr;
  }
  [[nodiscard]] const std::uint8_t* begin() const noexcept { return data(); }
  [[nodiscard]] const std::uint8_t* end() const noexcept {
    return data() + size();
  }
  [[nodiscard]] std::uint8_t operator[](std::size_t i) const noexcept {
    return (*buf_)[i];
  }

  /// Read-only view of the bytes (what the codec layer decodes from).
  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept {
    return buf_ ? std::span<const std::uint8_t>{*buf_}
                : std::span<const std::uint8_t>{};
  }
  operator std::span<const std::uint8_t>() const noexcept {  // NOLINT
    return view();
  }

  /// Materializes a private mutable copy (attack harnesses, fuzzers).
  [[nodiscard]] support::Bytes to_bytes() const {
    return buf_ ? *buf_ : support::Bytes{};
  }

  /// True when both refs point at the same shared buffer (no copy was
  /// made between them) — the zero-copy assertion used by tests.
  [[nodiscard]] bool shares_buffer_with(const PayloadRef& other) const noexcept {
    return buf_ == other.buf_;
  }

  /// Content equality (bytes, not buffer identity).
  friend bool operator==(const PayloadRef& a, const PayloadRef& b) noexcept {
    if (a.buf_ == b.buf_) return true;
    const auto va = a.view();
    const auto vb = b.view();
    return va.size() == vb.size() &&
           std::equal(va.begin(), va.end(), vb.begin());
  }
  friend bool operator==(const PayloadRef& a,
                         const support::Bytes& b) noexcept {
    const auto va = a.view();
    return va.size() == b.size() && std::equal(va.begin(), va.end(), b.begin());
  }

  /// Process-wide count of shared buffers created (i.e. payload byte
  /// allocations).  The broadcast microbenchmark and channel tests use
  /// deltas of this to pin "O(1) allocations per transmission".
  [[nodiscard]] static std::uint64_t buffers_created() noexcept {
    return alloc_count().load(std::memory_order_relaxed);
  }

 private:
  void adopt(support::Bytes&& bytes) {
    buf_ = std::make_shared<const support::Bytes>(std::move(bytes));
    alloc_count().fetch_add(1, std::memory_order_relaxed);
  }

  static std::atomic<std::uint64_t>& alloc_count() noexcept {
    static std::atomic<std::uint64_t> count{0};
    return count;
  }

  std::shared_ptr<const support::Bytes> buf_;
};

}  // namespace ldke::net
