#pragma once
/// \file channel.hpp
/// Broadcast wireless medium.  A transmission by node i is delivered to
/// every node within radio range after a serialization delay (packet
/// bits / bitrate) plus a small propagation delay; each receiver may
/// independently lose the packet with a configurable probability.
///
/// Collisions are off by default — the paper's SensorSimII experiments
/// measure message *counts* and key statistics without MAC contention;
/// ChannelConfig::model_collisions enables an overlap-corruption model
/// as an ablation, and loss injection covers the "unreliable link" axis.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/energy.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ldke::net {

struct ChannelConfig {
  double bitrate_bps = 19200.0;  ///< MICA2-class radio
  sim::SimTime propagation_delay = sim::SimTime::from_us(1.0);
  double loss_probability = 0.0;  ///< independent per receiver
  /// When true, two receptions whose airtimes overlap at the same
  /// receiver corrupt each other (no capture effect) — the collision
  /// ablation for the §V statistics.  SensorSimII (like the paper's
  /// numbers) did not model MAC contention; off by default.
  bool model_collisions = false;
  /// CSMA/CA: before transmitting, a node senses the medium (its own
  /// reception/transmission windows) and defers with a random
  /// exponential back-off while busy.  Removes most collisions at the
  /// cost of latency; hidden terminals still collide.
  bool csma = false;
  double csma_backoff_mean_s = 0.003;
  int csma_max_attempts = 16;
};

class Channel {
 public:
  /// Called once per (receiver, packet) delivery.
  using DeliveryHandler = std::function<void(NodeId receiver, const Packet&)>;

  Channel(sim::Simulator& sim, const Topology& topology, EnergyModel& energy,
          sim::TraceCounters& counters, ChannelConfig config = {});

  void set_delivery_handler(DeliveryHandler handler) {
    deliver_ = std::move(handler);
  }

  /// Passive global observer invoked for every transmission ("the
  /// broadcast nature of the transmission medium", §I) — the
  /// eavesdropping adversary of src/attacks records ciphertext here.
  using SnifferHandler = std::function<void(const Packet&)>;
  void set_sniffer(SnifferHandler sniffer) { sniffer_ = std::move(sniffer); }

  /// Broadcasts from a deployed node to all of its radio neighbors;
  /// charges tx energy to the sender and rx energy to each receiver.
  void broadcast(const Packet& packet);

  /// Broadcasts from an arbitrary position (attacker hardware that is not
  /// part of the deployment); \p radius may exceed the network range to
  /// model laptop-class transmitters.  No energy is charged.
  void broadcast_from(Vec2 position, double radius, const Packet& packet);

  [[nodiscard]] sim::SimTime tx_duration(const Packet& packet) const noexcept;

  [[nodiscard]] std::uint64_t transmissions() const noexcept { return tx_count_; }
  [[nodiscard]] std::uint64_t deliveries() const noexcept { return rx_count_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return tx_bytes_; }
  [[nodiscard]] std::uint64_t collisions() const noexcept { return collisions_; }
  [[nodiscard]] std::uint64_t losses() const noexcept { return losses_; }

  /// Per-PacketKind transmission tallies (index by the kind's numeric
  /// value); two fixed-array increments per frame, so always on.
  using KindArray = std::array<std::uint64_t, kPacketKindCount>;
  [[nodiscard]] const KindArray& tx_packets_by_kind() const noexcept {
    return tx_packets_by_kind_;
  }
  [[nodiscard]] const KindArray& tx_bytes_by_kind() const noexcept {
    return tx_bytes_by_kind_;
  }

  [[nodiscard]] const ChannelConfig& config() const noexcept { return config_; }

 private:
  void schedule_delivery(NodeId receiver, const Packet& packet,
                         sim::SimTime when);

  /// Shared transmit path for broadcast()/broadcast_from(): notes the
  /// frame (sniffer, byte/tx accounting, \p tx_counter) and schedules a
  /// delivery for every receiver.  The packet's payload is captured by
  /// refcount per receiver — O(1) buffer allocations regardless of
  /// neighbor count.
  void fan_out(const Packet& packet, std::span<const NodeId> receivers,
               sim::SimTime arrival, sim::TraceCounters::Handle tx_counter);

  /// Ongoing reception at a receiver; `corrupted` is shared with the
  /// scheduled delivery event so a later overlapping arrival can void it.
  struct Reception {
    sim::SimTime end;
    std::shared_ptr<bool> corrupted;
  };

  /// Registers the reception window [now, when] at \p receiver and
  /// returns its corruption flag (already true if it overlapped).
  std::shared_ptr<bool> track_reception(NodeId receiver, sim::SimTime when);

  /// CSMA: actually emits the frame, or re-schedules itself while the
  /// sender's medium is busy.
  void csma_transmit(Packet packet, int attempt);
  void emit_now(const Packet& packet);
  void note_busy(NodeId node, sim::SimTime until);

  sim::Simulator& sim_;
  const Topology& topology_;
  EnergyModel& energy_;
  sim::TraceCounters& counters_;
  ChannelConfig config_;
  DeliveryHandler deliver_;
  SnifferHandler sniffer_;
  std::uint64_t tx_count_ = 0;
  std::uint64_t rx_count_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t losses_ = 0;
  KindArray tx_packets_by_kind_{};
  KindArray tx_bytes_by_kind_{};
  std::uint64_t csma_deferrals_ = 0;
  std::uint64_t csma_drops_ = 0;
  std::unordered_map<NodeId, std::vector<Reception>> active_receptions_;
  std::unordered_map<NodeId, sim::SimTime> busy_until_;
  // Hot-path counters, resolved once: per-packet increments skip the
  // string lookup in TraceCounters.
  sim::TraceCounters::Handle ctr_tx_;
  sim::TraceCounters::Handle ctr_tx_external_;
  sim::TraceCounters::Handle ctr_delivered_;
  sim::TraceCounters::Handle ctr_lost_;
  sim::TraceCounters::Handle ctr_collision_;
  sim::TraceCounters::Handle ctr_csma_defer_;
  sim::TraceCounters::Handle ctr_csma_drop_;

 public:
  [[nodiscard]] std::uint64_t csma_deferrals() const noexcept {
    return csma_deferrals_;
  }
  [[nodiscard]] std::uint64_t csma_drops() const noexcept {
    return csma_drops_;
  }
};

}  // namespace ldke::net
