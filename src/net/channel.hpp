#pragma once
/// \file channel.hpp
/// Broadcast wireless medium.  A transmission by node i is delivered to
/// every node within radio range after a serialization delay (packet
/// bits / bitrate) plus a small propagation delay; each receiver may
/// independently lose the packet with a configurable probability.
///
/// Collisions are off by default — the paper's SensorSimII experiments
/// measure message *counts* and key statistics without MAC contention;
/// ChannelConfig::model_collisions enables an overlap-corruption model
/// as an ablation, and loss injection covers the "unreliable link" axis.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/energy.hpp"
#include "net/packet.hpp"
#include "net/packet_batch.hpp"
#include "net/topology.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ldke::net {

struct ChannelConfig {
  double bitrate_bps = 19200.0;  ///< MICA2-class radio
  sim::SimTime propagation_delay = sim::SimTime::from_us(1.0);
  double loss_probability = 0.0;  ///< independent per receiver
  /// When true, two receptions whose airtimes overlap at the same
  /// receiver corrupt each other (no capture effect) — the collision
  /// ablation for the §V statistics.  SensorSimII (like the paper's
  /// numbers) did not model MAC contention; off by default.
  bool model_collisions = false;
  /// CSMA/CA: before transmitting, a node senses the medium (its own
  /// reception/transmission windows) and defers with a random
  /// exponential back-off while busy.  Removes most collisions at the
  /// cost of latency; hidden terminals still collide.
  bool csma = false;
  double csma_backoff_mean_s = 0.003;
  int csma_max_attempts = 16;
};

class Channel {
 public:
  /// Called once per (receiver, packet) delivery.
  using DeliveryHandler = std::function<void(NodeId receiver, const Packet&)>;

  Channel(sim::Simulator& sim, const Topology& topology, EnergyModel& energy,
          sim::TraceCounters& counters, ChannelConfig config = {});

  void set_delivery_handler(DeliveryHandler handler) {
    deliver_ = std::move(handler);
  }

  /// Called once per (packet, lane) batched delivery with every receiver
  /// that survived loss/collision filtering, in the scalar path's
  /// per-receiver order.  Unset: deliver_batch falls back to invoking
  /// the scalar handler per receiver.
  using BatchDeliveryHandler =
      std::function<void(std::span<const NodeId>, const Packet&)>;
  void set_batch_delivery_handler(BatchDeliveryHandler handler) {
    batch_deliver_ = std::move(handler);
  }

  /// Passive global observer invoked for every transmission ("the
  /// broadcast nature of the transmission medium", §I) — the
  /// eavesdropping adversary of src/attacks records ciphertext here.
  using SnifferHandler = std::function<void(const Packet&)>;
  void set_sniffer(SnifferHandler sniffer) { sniffer_ = std::move(sniffer); }

  // ---- scenario gates (mobility / churn / duty cycling) ----------------

  /// Delivery-time liveness check: a frame already in flight to a node
  /// that left the network or put its radio to sleep must vanish at the
  /// antenna, not wake a recycled slot.  Returning false drops the frame
  /// and counts it as `pkt.dropped_gone` (no rx energy — the radio was
  /// off).  Unset: every receiver is live (the historical behaviour).
  using DeliveryGate = std::function<bool(NodeId receiver)>;
  void set_delivery_gate(DeliveryGate gate) { delivery_gate_ = std::move(gate); }

  /// Transmit-time link validity (scripted partitions, obstacle models):
  /// checked per (sender, receiver) before the loss draw; returning
  /// false suppresses the delivery and counts `pkt.dropped_partition`.
  using LinkGate = std::function<bool(NodeId sender, NodeId receiver)>;
  void set_link_gate(LinkGate gate) { link_gate_ = std::move(gate); }

  /// Broadcasts from a deployed node to all of its radio neighbors;
  /// charges tx energy to the sender and rx energy to each receiver.
  void broadcast(const Packet& packet);

  /// Broadcasts from an arbitrary position (attacker hardware that is not
  /// part of the deployment); \p radius may exceed the network range to
  /// model laptop-class transmitters.  No energy is charged.
  void broadcast_from(Vec2 position, double radius, const Packet& packet);

  /// Batched transmit: every packet in \p batch is broadcast exactly as
  /// broadcast() would, but the per-receiver delivery events of one
  /// packet coalesce into a single event per destination lane.  Loss
  /// draws, energy charges, tallies, and handler-invocation order are
  /// bit-identical to size() scalar broadcasts; only the scheduler's
  /// event count differs.  CSMA falls back to the scalar path (medium
  /// sensing serializes transmissions through per-sender state).
  void deliver_batch(const PacketBatch& batch);

  [[nodiscard]] sim::SimTime tx_duration(const Packet& packet) const noexcept;

  /// Smallest possible cross-lane latency: an empty frame's airtime plus
  /// the propagation delay.  This is the sharded kernel's lookahead —
  /// every delivery arrives at least this long after its transmission.
  [[nodiscard]] sim::SimTime min_latency() const noexcept;

  /// Switches the channel onto per-lane accounting and cross-lane halo
  /// delivery.  \p lane_of maps node id -> lane; \p lane_counters is one
  /// registry per lane (lane 0 may be the network's main registry).
  /// Both must outlive the channel.  Requires the lane-incompatible
  /// features (loss injection, collisions, CSMA) to be off — the runner
  /// clamps to one lane otherwise.
  void enable_lanes(sim::ShardedKernel& kernel,
                    const std::vector<std::uint32_t>& lane_of,
                    std::span<sim::TraceCounters* const> lane_counters);

  [[nodiscard]] std::uint64_t transmissions() const noexcept {
    return sum_tally(&LaneTallies::tx_count);
  }
  [[nodiscard]] std::uint64_t deliveries() const noexcept {
    return sum_tally(&LaneTallies::rx_count);
  }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return sum_tally(&LaneTallies::tx_bytes);
  }
  [[nodiscard]] std::uint64_t collisions() const noexcept {
    return sum_tally(&LaneTallies::collisions);
  }
  [[nodiscard]] std::uint64_t losses() const noexcept {
    return sum_tally(&LaneTallies::losses);
  }
  [[nodiscard]] std::uint64_t dropped_gone() const noexcept {
    return sum_tally(&LaneTallies::dropped_gone);
  }
  [[nodiscard]] std::uint64_t dropped_partition() const noexcept {
    return sum_tally(&LaneTallies::dropped_partition);
  }

  /// Per-PacketKind transmission tallies (index by the kind's numeric
  /// value); two fixed-array increments per frame, so always on.
  /// Returned by value: the figures are folded across lanes.
  using KindArray = std::array<std::uint64_t, kPacketKindCount>;
  [[nodiscard]] KindArray tx_packets_by_kind() const noexcept;
  [[nodiscard]] KindArray tx_bytes_by_kind() const noexcept;

  [[nodiscard]] const ChannelConfig& config() const noexcept { return config_; }

 private:
  void schedule_delivery(NodeId receiver, const Packet& packet,
                         sim::SimTime when);

  /// fan_out's batched twin: same transmit accounting and schedule-time
  /// loss/collision decisions, one coalesced delivery event per
  /// destination lane.
  void fan_out_batched(const Packet& packet, std::span<const NodeId> receivers,
                       sim::SimTime arrival);

  struct LaneTallies;

  /// Shared transmit path for broadcast()/broadcast_from(): notes the
  /// frame (sniffer, byte/tx accounting, the lane's \p tx_counter) and
  /// schedules a delivery for every receiver.  The packet's payload is
  /// captured by refcount per receiver — O(1) buffer allocations
  /// regardless of neighbor count.
  void fan_out(const Packet& packet, std::span<const NodeId> receivers,
               sim::SimTime arrival,
               sim::TraceCounters::Handle LaneTallies::* tx_counter);

  /// Ongoing reception at a receiver; `corrupted` is shared with the
  /// scheduled delivery event so a later overlapping arrival can void it.
  struct Reception {
    sim::SimTime end;
    std::shared_ptr<bool> corrupted;
  };

  /// Registers the reception window [now, when] at \p receiver and
  /// returns its corruption flag (already true if it overlapped).
  std::shared_ptr<bool> track_reception(NodeId receiver, sim::SimTime when);

  /// CSMA: actually emits the frame, or re-schedules itself while the
  /// sender's medium is busy.
  void csma_transmit(Packet packet, int attempt);
  void emit_now(const Packet& packet);
  void note_busy(NodeId node, sim::SimTime until);

  /// Per-lane accounting cell: scalar tallies plus hot-path counter
  /// handles resolved against that lane's registry.  Cache-line aligned
  /// so concurrent lanes never false-share; the serial channel is lane 0
  /// of a one-cell vector (no behavioral fork).
  struct alignas(64) LaneTallies {
    std::uint64_t tx_count = 0;
    std::uint64_t rx_count = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t collisions = 0;
    std::uint64_t losses = 0;
    std::uint64_t csma_deferrals = 0;
    std::uint64_t csma_drops = 0;
    std::uint64_t dropped_gone = 0;       ///< receiver left/slept mid-flight
    std::uint64_t dropped_partition = 0;  ///< link gated at transmit time
    KindArray tx_packets_by_kind{};
    KindArray tx_bytes_by_kind{};
    // Hot-path counters, resolved once: per-packet increments skip the
    // string lookup in TraceCounters.
    sim::TraceCounters::Handle ctr_tx;
    sim::TraceCounters::Handle ctr_tx_external;
    sim::TraceCounters::Handle ctr_delivered;
    sim::TraceCounters::Handle ctr_lost;
    sim::TraceCounters::Handle ctr_collision;
    sim::TraceCounters::Handle ctr_csma_defer;
    sim::TraceCounters::Handle ctr_csma_drop;
    sim::TraceCounters::Handle ctr_dropped_gone;
    sim::TraceCounters::Handle ctr_dropped_partition;

    void resolve_handles(sim::TraceCounters& counters);
  };

  /// The calling thread's accounting cell (lane-bound inside a window,
  /// cell 0 everywhere else and in the serial channel).
  [[nodiscard]] LaneTallies& tallies() noexcept {
    return tallies_[kernel_ ? sim::ShardedKernel::current_lane() : 0];
  }

  [[nodiscard]] std::uint64_t sum_tally(
      std::uint64_t LaneTallies::* field) const noexcept {
    std::uint64_t total = 0;
    for (const LaneTallies& t : tallies_) total += t.*field;
    return total;
  }

  sim::Simulator& sim_;
  const Topology& topology_;
  EnergyModel& energy_;
  sim::TraceCounters& counters_;
  ChannelConfig config_;
  DeliveryHandler deliver_;
  BatchDeliveryHandler batch_deliver_;
  SnifferHandler sniffer_;
  DeliveryGate delivery_gate_;
  LinkGate link_gate_;
  std::vector<LaneTallies> tallies_;  ///< one cell per lane; [0] serial
  sim::ShardedKernel* kernel_ = nullptr;          ///< set by enable_lanes
  const std::vector<std::uint32_t>* lane_of_ = nullptr;  ///< node -> lane
  std::unordered_map<NodeId, std::vector<Reception>> active_receptions_;
  std::unordered_map<NodeId, sim::SimTime> busy_until_;

 public:
  [[nodiscard]] std::uint64_t csma_deferrals() const noexcept {
    return sum_tally(&LaneTallies::csma_deferrals);
  }
  [[nodiscard]] std::uint64_t csma_drops() const noexcept {
    return sum_tally(&LaneTallies::csma_drops);
  }
};

}  // namespace ldke::net
