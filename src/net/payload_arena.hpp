#pragma once
/// \file payload_arena.hpp
/// Per-trial bump arena for packet payload bytes.
///
/// Setup-phase HELLO/JOIN churn creates hundreds of thousands of short
/// payloads per trial; with each payload individually heap-allocated the
/// allocator becomes both the malloc hot spot and a fragmentation source
/// at 100k nodes.  The arena hands out payload blocks from large chunks
/// with a bump pointer.  Safety comes from reference counting at chunk
/// granularity: every PayloadRef carved from a chunk holds one reference
/// on the chunk's owner header, so `reset()` can only recycle a chunk
/// once no payload still points into it — a ref that outlives the trial
/// keeps just its own chunk alive, never dangles.
///
/// The arena is installed thread-locally via PayloadArena::Scope (the
/// ProtocolRunner does this around each phase); PayloadRef allocation
/// falls back to a private heap block when no arena is current, so unit
/// tests and harnesses that never touch a runner are unaffected.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ldke::net {

namespace detail {

/// Refcounted allocation header.  For a standalone payload the owner
/// header, the block and the bytes share one allocation; for an arena
/// chunk the owner heads the chunk and every block inside it counts as
/// one reference.  When the count hits zero the whole allocation is
/// freed with `::operator delete(owner)`.
struct PayloadOwner {
  std::atomic<std::uint32_t> refs;
  std::uint32_t reserved = 0;  // pads to 8 so trailing blocks stay aligned
};
static_assert(sizeof(PayloadOwner) == 8);

/// One payload inside an owner's allocation; the bytes follow the block
/// header contiguously.
struct PayloadBlock {
  PayloadOwner* owner;
  std::uint32_t size;
  std::uint32_t reserved = 0;  // keeps the byte area 8-aligned

  [[nodiscard]] const std::uint8_t* bytes() const noexcept {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
  [[nodiscard]] std::uint8_t* bytes() noexcept {
    return reinterpret_cast<std::uint8_t*>(this + 1);
  }
};
static_assert(sizeof(PayloadBlock) % 8 == 0);

}  // namespace detail

class PayloadArena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit PayloadArena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}
  ~PayloadArena();

  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;

  /// Carves a block for \p n payload bytes out of the current chunk
  /// (bump pointer), opening a new chunk when full.  The returned block
  /// already carries the caller's reference on its chunk.
  detail::PayloadBlock* allocate(std::size_t n);

  /// Recycles every chunk that has no outstanding payload references;
  /// chunks still referenced are released to their last PayloadRef.
  /// Call between trials, never mid-trial.
  void reset() noexcept;

  /// Steady-state (mid-run) reclamation: retires every chunk — including
  /// the bump target — into the retired set and opens a new generation.
  /// Unlike reset(), chunks that still carry payload references stay
  /// *arena-owned*: each later advance_generation()/reclaim() sweeps the
  /// retired set again and recycles chunks whose last in-flight packet
  /// has since been delivered.  This bounds steady-state memory to the
  /// working set instead of growing with run length.
  void advance_generation() noexcept;

  /// Sweeps the retired set, recycling any chunk whose references have
  /// drained.  Called by advance_generation(); exposed for tests and
  /// end-of-run accounting.
  void reclaim() noexcept;

  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }
  /// Retired chunks still pinned by in-flight payload references.
  [[nodiscard]] std::size_t retired_chunks() const noexcept {
    return retired_.size();
  }

  /// Chunks currently owned by the arena (live + retired + recycled).
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size() + retired_.size() + free_chunks_.size();
  }
  /// Payload blocks handed out since construction.
  [[nodiscard]] std::uint64_t blocks_allocated() const noexcept {
    return blocks_allocated_;
  }

  /// RAII installation as the thread's current arena.
  class Scope {
   public:
    explicit Scope(PayloadArena& arena) noexcept
        : prev_(current_) {
      current_ = &arena;
    }
    ~Scope() { current_ = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PayloadArena* prev_;
  };

  /// Arena PayloadRef allocations route through, or nullptr.
  [[nodiscard]] static PayloadArena* current() noexcept { return current_; }

 private:
  struct Chunk {
    detail::PayloadOwner* owner = nullptr;  // heads the chunk allocation
    std::size_t capacity = 0;               // usable bytes after the owner
    std::size_t used = 0;
  };

  Chunk new_chunk(std::size_t capacity);
  static void release_chunk(Chunk& chunk) noexcept;

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;       // chunks_.back() is the bump target
  std::vector<Chunk> retired_;      // prior generations, refs draining
  std::vector<Chunk> free_chunks_;  // recycled, ready for reuse
  std::uint64_t blocks_allocated_ = 0;
  std::uint64_t generation_ = 0;

  static thread_local PayloadArena* current_;
};

}  // namespace ldke::net
