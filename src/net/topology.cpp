#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ldke::net {

double Topology::range_for_density(std::size_t count, double side,
                                   double density) noexcept {
  return side * std::sqrt(density /
                          (std::numbers::pi * static_cast<double>(count)));
}

Topology Topology::random_uniform(std::size_t count, double side, double range,
                                  support::Xoshiro256& rng) {
  Topology topo;
  topo.side_ = side;
  topo.range_ = range;
  topo.positions_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    topo.positions_.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  topo.index_into_grid();
  topo.rebuild_neighbor_lists();
  return topo;
}

Topology Topology::random_with_density(std::size_t count, double side,
                                       double density,
                                       support::Xoshiro256& rng) {
  return random_uniform(count, side, range_for_density(count, side, density),
                        rng);
}

Topology Topology::from_positions(std::vector<Vec2> positions, double range) {
  Topology topo;
  double side = 1.0;
  for (const Vec2& p : positions) side = std::max({side, p.x, p.y});
  topo.side_ = side;
  topo.range_ = range;
  topo.positions_ = std::move(positions);
  topo.index_into_grid();
  topo.rebuild_neighbor_lists();
  return topo;
}

std::size_t Topology::cell_index(Vec2 pos) const noexcept {
  const double cell = side_ / static_cast<double>(grid_dim_);
  auto clamp_dim = [this](double v) {
    auto idx = static_cast<std::size_t>(v);
    return std::min(idx, grid_dim_ - 1);
  };
  const std::size_t cx = clamp_dim(pos.x / cell);
  const std::size_t cy = clamp_dim(pos.y / cell);
  return cy * grid_dim_ + cx;
}

double Topology::expected_degree() const noexcept {
  if (positions_.empty() || side_ <= 0.0) return 0.0;
  return static_cast<double>(positions_.size()) * std::numbers::pi * range_ *
         range_ / (side_ * side_);
}

void Topology::index_into_grid() {
  const std::size_t n = positions_.size();
  grid_dim_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(side_ / std::max(range_, 1e-9)));
  // A grid finer than ~2·sqrt(N) cells per axis leaves most cells empty
  // while the offsets array alone would dwarf the id data, so clamp the
  // cell count to O(N) (neighbor scans just cover more cells per query).
  const auto count_clamp =
      static_cast<std::size_t>(
          2.0 * std::sqrt(static_cast<double>(std::max<std::size_t>(n, 1)))) +
      1;
  grid_dim_ = std::min(grid_dim_, std::min<std::size_t>(count_clamp, 4096));
  // Counting sort into CSR: per-cell counts, prefix sums, then a fill
  // pass in id order (which keeps every cell's ids ascending).
  grid_offsets_.assign(grid_dim_ * grid_dim_ + 1, 0);
  for (const Vec2& pos : positions_) ++grid_offsets_[cell_index(pos) + 1];
  for (std::size_t c = 1; c < grid_offsets_.size(); ++c) {
    grid_offsets_[c] += grid_offsets_[c - 1];
  }
  grid_ids_.resize(n);
  std::vector<std::uint32_t> cursor(grid_offsets_.begin(),
                                    grid_offsets_.end() - 1);
  for (NodeId id = 0; id < n; ++id) {
    grid_ids_[cursor[cell_index(positions_[id])]++] = id;
  }
}

void Topology::scan_into(std::vector<NodeId>& out, Vec2 center, double radius,
                         NodeId exclude) const {
  const std::size_t first = out.size();
  const double cell = side_ / static_cast<double>(grid_dim_);
  const double r2 = radius * radius;
  const int reach = static_cast<int>(std::ceil(radius / cell));
  const int cx = static_cast<int>(center.x / cell);
  const int cy = static_cast<int>(center.y / cell);
  const int dim = static_cast<int>(grid_dim_);
  for (int gy = std::max(0, cy - reach); gy <= std::min(dim - 1, cy + reach);
       ++gy) {
    for (int gx = std::max(0, cx - reach); gx <= std::min(dim - 1, cx + reach);
         ++gx) {
      const std::size_t c = static_cast<std::size_t>(gy) * grid_dim_ +
                            static_cast<std::size_t>(gx);
      for (std::uint32_t i = grid_offsets_[c]; i < grid_offsets_[c + 1]; ++i) {
        const NodeId other = grid_ids_[i];
        if (other == exclude) continue;
        if (distance_squared(center, positions_[other]) <= r2) {
          out.push_back(other);
        }
      }
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

std::vector<NodeId> Topology::scan_neighbors(Vec2 center, double radius,
                                             NodeId exclude) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(expected_degree()) + 8);
  scan_into(out, center, radius, exclude);
  return out;
}

void Topology::rebuild_neighbor_lists() {
  const std::size_t n = positions_.size();
  const double degree = expected_degree();
  neighbor_offsets_.clear();
  neighbor_offsets_.reserve(n + 1);
  neighbor_offsets_.push_back(0);
  neighbor_ids_.clear();
  neighbor_ids_.reserve(
      static_cast<std::size_t>(static_cast<double>(n) * (degree + 1.0)));
  // One scratch buffer for every scan instead of a fresh vector per node.
  std::vector<NodeId> scratch;
  scratch.reserve(static_cast<std::size_t>(degree * 2.0) + 8);
  for (NodeId id = 0; id < n; ++id) {
    scratch.clear();
    scan_into(scratch, positions_[id], range_, id);
    neighbor_ids_.insert(neighbor_ids_.end(), scratch.begin(), scratch.end());
    neighbor_offsets_.push_back(
        static_cast<std::uint32_t>(neighbor_ids_.size()));
  }
  neighbor_ids_.shrink_to_fit();
}

double Topology::mean_degree() const noexcept {
  if (positions_.empty()) return 0.0;
  return static_cast<double>(neighbor_ids_.size()) /
         static_cast<double>(positions_.size());
}

std::vector<NodeId> Topology::nodes_within(Vec2 center, double radius) const {
  return scan_neighbors(center, radius, kNoNode);
}

void Topology::update_positions(std::span<const Vec2> positions) {
  // Mobility epochs call this once per epoch for the whole deployment;
  // an in-place overwrite plus full grid/CSR rebuild beats per-node
  // splicing as soon as more than a handful of nodes moved, and reuses
  // every allocation the previous build left behind.
  positions_.assign(positions.begin(), positions.end());
  for (Vec2& p : positions_) {
    p.x = std::clamp(p.x, 0.0, side_);
    p.y = std::clamp(p.y, 0.0, side_);
  }
  index_into_grid();
  rebuild_neighbor_lists();
}

NodeId Topology::add_node(Vec2 pos) {
  const auto id = static_cast<NodeId>(positions_.size());
  positions_.push_back(pos);
  // Splice into the grid CSR: the new id is the largest, so it lands at
  // the end of its cell's ascending run.
  const std::size_t c = cell_index(pos);
  grid_ids_.insert(grid_ids_.begin() + grid_offsets_[c + 1], id);
  for (std::size_t i = c + 1; i < grid_offsets_.size(); ++i) {
    ++grid_offsets_[i];
  }
  // §IV-E additions are rare and small-N, so O(edges) splices into the
  // neighbor CSR are fine; bulk builds go through rebuild_neighbor_lists.
  const std::vector<NodeId> nbrs = scan_neighbors(pos, range_, id);
  for (NodeId neighbor : nbrs) {
    const auto begin =
        neighbor_ids_.begin() + neighbor_offsets_[neighbor];
    const auto end = neighbor_ids_.begin() + neighbor_offsets_[neighbor + 1];
    neighbor_ids_.insert(std::upper_bound(begin, end, id), id);
    for (std::size_t i = neighbor + 1; i < neighbor_offsets_.size(); ++i) {
      ++neighbor_offsets_[i];
    }
  }
  neighbor_ids_.insert(neighbor_ids_.end(), nbrs.begin(), nbrs.end());
  neighbor_offsets_.push_back(
      static_cast<std::uint32_t>(neighbor_ids_.size()));
  return id;
}

}  // namespace ldke::net
