#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ldke::net {

double Topology::range_for_density(std::size_t count, double side,
                                   double density) noexcept {
  return side * std::sqrt(density /
                          (std::numbers::pi * static_cast<double>(count)));
}

Topology Topology::random_uniform(std::size_t count, double side, double range,
                                  support::Xoshiro256& rng) {
  Topology topo;
  topo.side_ = side;
  topo.range_ = range;
  topo.positions_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    topo.positions_.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  topo.index_into_grid();
  topo.rebuild_neighbor_lists();
  return topo;
}

Topology Topology::random_with_density(std::size_t count, double side,
                                       double density,
                                       support::Xoshiro256& rng) {
  return random_uniform(count, side, range_for_density(count, side, density),
                        rng);
}

Topology Topology::from_positions(std::vector<Vec2> positions, double range) {
  Topology topo;
  double side = 1.0;
  for (const Vec2& p : positions) side = std::max({side, p.x, p.y});
  topo.side_ = side;
  topo.range_ = range;
  topo.positions_ = std::move(positions);
  topo.index_into_grid();
  topo.rebuild_neighbor_lists();
  return topo;
}

std::size_t Topology::cell_index(Vec2 pos) const noexcept {
  const double cell = side_ / static_cast<double>(grid_dim_);
  auto clamp_dim = [this](double v) {
    auto idx = static_cast<std::size_t>(v);
    return std::min(idx, grid_dim_ - 1);
  };
  const std::size_t cx = clamp_dim(pos.x / cell);
  const std::size_t cy = clamp_dim(pos.y / cell);
  return cy * grid_dim_ + cx;
}

void Topology::index_into_grid() {
  grid_dim_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(side_ / std::max(range_, 1e-9)));
  grid_dim_ = std::min<std::size_t>(grid_dim_, 4096);
  grid_.assign(grid_dim_ * grid_dim_, {});
  for (NodeId id = 0; id < positions_.size(); ++id) {
    grid_[cell_index(positions_[id])].push_back(id);
  }
}

std::vector<NodeId> Topology::scan_neighbors(Vec2 center, double radius,
                                             NodeId exclude) const {
  std::vector<NodeId> out;
  const double cell = side_ / static_cast<double>(grid_dim_);
  const double r2 = radius * radius;
  const int reach = static_cast<int>(std::ceil(radius / cell));
  const int cx = static_cast<int>(center.x / cell);
  const int cy = static_cast<int>(center.y / cell);
  const int dim = static_cast<int>(grid_dim_);
  for (int gy = std::max(0, cy - reach); gy <= std::min(dim - 1, cy + reach);
       ++gy) {
    for (int gx = std::max(0, cx - reach); gx <= std::min(dim - 1, cx + reach);
         ++gx) {
      for (NodeId other : grid_[static_cast<std::size_t>(gy) * grid_dim_ +
                                static_cast<std::size_t>(gx)]) {
        if (other == exclude) continue;
        if (distance_squared(center, positions_[other]) <= r2) {
          out.push_back(other);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Topology::rebuild_neighbor_lists() {
  neighbor_lists_.assign(positions_.size(), {});
  for (NodeId id = 0; id < positions_.size(); ++id) {
    neighbor_lists_[id] = scan_neighbors(positions_[id], range_, id);
  }
}

double Topology::mean_degree() const noexcept {
  if (positions_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& list : neighbor_lists_) total += list.size();
  return static_cast<double>(total) / static_cast<double>(positions_.size());
}

std::vector<NodeId> Topology::nodes_within(Vec2 center, double radius) const {
  return scan_neighbors(center, radius, kNoNode);
}

NodeId Topology::add_node(Vec2 pos) {
  const auto id = static_cast<NodeId>(positions_.size());
  positions_.push_back(pos);
  grid_[cell_index(pos)].push_back(id);
  neighbor_lists_.push_back(scan_neighbors(pos, range_, id));
  for (NodeId neighbor : neighbor_lists_.back()) {
    auto& list = neighbor_lists_[neighbor];
    list.insert(std::upper_bound(list.begin(), list.end(), id), id);
  }
  return id;
}

}  // namespace ldke::net
