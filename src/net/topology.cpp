#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace ldke::net {

double Topology::range_for_density(std::size_t count, double side,
                                   double density) noexcept {
  return side * std::sqrt(density /
                          (std::numbers::pi * static_cast<double>(count)));
}

Topology Topology::random_uniform(std::size_t count, double side, double range,
                                  support::Xoshiro256& rng) {
  Topology topo;
  topo.side_ = side;
  topo.range_ = range;
  topo.positions_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    topo.positions_.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  topo.index_into_grid();
  topo.rebuild_neighbor_lists();
  return topo;
}

Topology Topology::random_with_density(std::size_t count, double side,
                                       double density,
                                       support::Xoshiro256& rng) {
  return random_uniform(count, side, range_for_density(count, side, density),
                        rng);
}

Topology Topology::from_positions(std::vector<Vec2> positions, double range) {
  Topology topo;
  double side = 1.0;
  for (const Vec2& p : positions) side = std::max({side, p.x, p.y});
  topo.side_ = side;
  topo.range_ = range;
  topo.positions_ = std::move(positions);
  topo.index_into_grid();
  topo.rebuild_neighbor_lists();
  return topo;
}

std::size_t Topology::cell_index(Vec2 pos) const noexcept {
  const double cell = side_ / static_cast<double>(grid_dim_);
  auto clamp_dim = [this](double v) {
    auto idx = static_cast<std::size_t>(v);
    return std::min(idx, grid_dim_ - 1);
  };
  const std::size_t cx = clamp_dim(pos.x / cell);
  const std::size_t cy = clamp_dim(pos.y / cell);
  return cy * grid_dim_ + cx;
}

double Topology::expected_degree() const noexcept {
  if (positions_.empty() || side_ <= 0.0) return 0.0;
  return static_cast<double>(positions_.size()) * std::numbers::pi * range_ *
         range_ / (side_ * side_);
}

void Topology::index_into_grid() {
  const std::size_t n = positions_.size();
  grid_dim_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(side_ / std::max(range_, 1e-9)));
  // A grid finer than ~2·sqrt(N) cells per axis leaves most cells empty
  // while the offsets array alone would dwarf the id data, so clamp the
  // cell count to O(N) (neighbor scans just cover more cells per query).
  const auto count_clamp =
      static_cast<std::size_t>(
          2.0 * std::sqrt(static_cast<double>(std::max<std::size_t>(n, 1)))) +
      1;
  grid_dim_ = std::min(grid_dim_, std::min<std::size_t>(count_clamp, 4096));
  // Counting sort into CSR: per-cell counts, prefix sums, then a fill
  // pass in id order (which keeps every cell's ids ascending).
  grid_offsets_.assign(grid_dim_ * grid_dim_ + 1, 0);
  for (const Vec2& pos : positions_) ++grid_offsets_[cell_index(pos) + 1];
  for (std::size_t c = 1; c < grid_offsets_.size(); ++c) {
    grid_offsets_[c] += grid_offsets_[c - 1];
  }
  grid_ids_.resize(n);
  std::vector<std::uint32_t> cursor(grid_offsets_.begin(),
                                    grid_offsets_.end() - 1);
  for (NodeId id = 0; id < n; ++id) {
    grid_ids_[cursor[cell_index(positions_[id])]++] = id;
  }
  // Any linked-cell index is stale now; the next incremental pass
  // rebuilds it lazily.
  grid_linked_ = false;
}

void Topology::ensure_linked_grid() {
  if (grid_linked_) return;
  const std::size_t n = positions_.size();
  cell_head_.assign(grid_dim_ * grid_dim_, kNoNode);
  grid_next_.assign(n, kNoNode);
  grid_prev_.assign(n, kNoNode);
  cell_of_.resize(n);
  // Push-front in descending id order so every cell list comes out
  // ascending — not required (scan_into sorts) but keeps walks and the
  // CSR twin visually comparable when debugging.
  for (NodeId id = static_cast<NodeId>(n); id-- > 0;) {
    const auto c = static_cast<std::uint32_t>(cell_index(positions_[id]));
    cell_of_[id] = c;
    grid_link(id, c);
  }
  grid_linked_ = true;
}

void Topology::grid_link(NodeId id, std::uint32_t cell) {
  cell_of_[id] = cell;
  grid_prev_[id] = kNoNode;
  grid_next_[id] = cell_head_[cell];
  if (cell_head_[cell] != kNoNode) grid_prev_[cell_head_[cell]] = id;
  cell_head_[cell] = id;
}

void Topology::grid_unlink(NodeId id) {
  const NodeId prev = grid_prev_[id];
  const NodeId next = grid_next_[id];
  if (prev != kNoNode) {
    grid_next_[prev] = next;
  } else {
    cell_head_[cell_of_[id]] = next;
  }
  if (next != kNoNode) grid_prev_[next] = prev;
}

void Topology::scan_into(std::vector<NodeId>& out, Vec2 center, double radius,
                         NodeId exclude) const {
  const std::size_t first = out.size();
  const double cell = side_ / static_cast<double>(grid_dim_);
  const double r2 = radius * radius;
  const int reach = static_cast<int>(std::ceil(radius / cell));
  const int cx = static_cast<int>(center.x / cell);
  const int cy = static_cast<int>(center.y / cell);
  const int dim = static_cast<int>(grid_dim_);
  for (int gy = std::max(0, cy - reach); gy <= std::min(dim - 1, cy + reach);
       ++gy) {
    for (int gx = std::max(0, cx - reach); gx <= std::min(dim - 1, cx + reach);
         ++gx) {
      const std::size_t c = static_cast<std::size_t>(gy) * grid_dim_ +
                            static_cast<std::size_t>(gx);
      if (grid_linked_) {
        for (NodeId other = cell_head_[c]; other != kNoNode;
             other = grid_next_[other]) {
          if (other == exclude) continue;
          if (distance_squared(center, positions_[other]) <= r2) {
            out.push_back(other);
          }
        }
      } else {
        for (std::uint32_t i = grid_offsets_[c]; i < grid_offsets_[c + 1];
             ++i) {
          const NodeId other = grid_ids_[i];
          if (other == exclude) continue;
          if (distance_squared(center, positions_[other]) <= r2) {
            out.push_back(other);
          }
        }
      }
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

std::vector<NodeId> Topology::scan_neighbors(Vec2 center, double radius,
                                             NodeId exclude) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(expected_degree()) + 8);
  scan_into(out, center, radius, exclude);
  return out;
}

void Topology::rebuild_neighbor_lists() {
  const std::size_t n = positions_.size();
  const double degree = expected_degree();
  nbr_begin_.resize(n);
  nbr_count_.resize(n);
  nbr_cap_.resize(n);
  nbr_pool_.clear();
  nbr_pool_.reserve(
      static_cast<std::size_t>(static_cast<double>(n) * (degree + 1.0)));
  // One scratch buffer for every scan instead of a fresh vector per node.
  std::vector<NodeId> scratch;
  scratch.reserve(static_cast<std::size_t>(degree * 2.0) + 8);
  total_degree_ = 0;
  for (NodeId id = 0; id < n; ++id) {
    scratch.clear();
    scan_into(scratch, positions_[id], range_, id);
    nbr_begin_[id] = static_cast<std::uint32_t>(nbr_pool_.size());
    const auto deg = static_cast<std::uint32_t>(scratch.size());
    nbr_count_[id] = deg;
    nbr_cap_[id] = deg;  // exact fit: bulk layout carries zero slack
    nbr_pool_.insert(nbr_pool_.end(), scratch.begin(), scratch.end());
    total_degree_ += deg;
  }
  nbr_pool_.shrink_to_fit();
}

double Topology::mean_degree() const noexcept {
  if (positions_.empty()) return 0.0;
  return static_cast<double>(total_degree_) /
         static_cast<double>(positions_.size());
}

std::vector<NodeId> Topology::nodes_within(Vec2 center, double radius) const {
  return scan_neighbors(center, radius, kNoNode);
}

void Topology::update_positions(std::span<const Vec2> positions) {
  // The full-rebuild reference: overwrite every position, then rebuild
  // the grid and all neighbor lists from scratch, reusing allocations.
  positions_.assign(positions.begin(), positions.end());
  for (Vec2& p : positions_) {
    p.x = std::clamp(p.x, 0.0, side_);
    p.y = std::clamp(p.y, 0.0, side_);
  }
  index_into_grid();
  rebuild_neighbor_lists();
}

void Topology::store_list(NodeId id, std::span<const NodeId> ids) {
  if (ids.size() <= nbr_cap_[id]) {
    std::copy(ids.begin(), ids.end(),
              nbr_pool_.begin() + static_cast<std::ptrdiff_t>(nbr_begin_[id]));
  } else {
    // Relocate to the pool tail with slack so the next few inserts stay
    // in place; the old slot is dead weight until compact_pool().
    const auto cap =
        static_cast<std::uint32_t>(ids.size() + ids.size() / 2 + 4);
    nbr_begin_[id] = static_cast<std::uint32_t>(nbr_pool_.size());
    nbr_cap_[id] = cap;
    nbr_pool_.insert(nbr_pool_.end(), ids.begin(), ids.end());
    nbr_pool_.resize(nbr_pool_.size() + (cap - ids.size()), kNoNode);
    ++maint_.slot_relocations;
  }
  total_degree_ += ids.size();
  total_degree_ -= nbr_count_[id];
  nbr_count_[id] = static_cast<std::uint32_t>(ids.size());
}

void Topology::patch_insert(NodeId id, NodeId other) {
  if (nbr_count_[id] == nbr_cap_[id]) {
    const auto list = neighbors(id);
    scratch_patch_.assign(list.begin(), list.end());
    scratch_patch_.insert(
        std::upper_bound(scratch_patch_.begin(), scratch_patch_.end(), other),
        other);
    store_list(id, scratch_patch_);
    return;
  }
  const auto begin =
      nbr_pool_.begin() + static_cast<std::ptrdiff_t>(nbr_begin_[id]);
  const auto end = begin + nbr_count_[id];
  const auto pos = std::upper_bound(begin, end, other);
  std::copy_backward(pos, end, end + 1);
  *pos = other;
  ++nbr_count_[id];
  ++total_degree_;
}

void Topology::patch_erase(NodeId id, NodeId other) {
  const auto begin =
      nbr_pool_.begin() + static_cast<std::ptrdiff_t>(nbr_begin_[id]);
  const auto end = begin + nbr_count_[id];
  const auto pos = std::lower_bound(begin, end, other);
  assert(pos != end && *pos == other);
  std::copy(pos + 1, end, pos);
  --nbr_count_[id];
  --total_degree_;
}

void Topology::compact_pool() {
  // Double-buffered rewrite: lay every live slot out in id order in the
  // spare buffer (a couple of slack entries each so fresh patches do not
  // immediately relocate again), then swap the buffers.
  const std::size_t n = positions_.size();
  compact_buf_.clear();
  compact_buf_.reserve(total_degree_ + 2 * n);
  for (NodeId id = 0; id < n; ++id) {
    const auto list = neighbors(id);
    nbr_begin_[id] = static_cast<std::uint32_t>(compact_buf_.size());
    nbr_cap_[id] = static_cast<std::uint32_t>(list.size() + 2);
    compact_buf_.insert(compact_buf_.end(), list.begin(), list.end());
    compact_buf_.push_back(kNoNode);
    compact_buf_.push_back(kNoNode);
  }
  std::swap(nbr_pool_, compact_buf_);
  ++maint_.pool_compactions;
}

void Topology::apply_displacements(std::span<const NodeId> moved,
                                   std::span<const Vec2> new_positions,
                                   std::vector<EdgeChange>* diff) {
  assert(moved.size() == new_positions.size());
  ++maint_.incremental_epochs;
  if (moved.empty()) return;
  ensure_linked_grid();
  if (mover_stamp_.size() < positions_.size()) {
    mover_stamp_.resize(positions_.size(), 0);
  }
  ++stamp_epoch_;
  if (stamp_epoch_ == 0) {  // wrapped: stamps are ambiguous, reset them
    std::fill(mover_stamp_.begin(), mover_stamp_.end(), 0);
    stamp_epoch_ = 1;
  }
  // Phase 1: commit every mover's position and re-bucket cell crossers,
  // so phase 2's scans all see the epoch's final geometry.
  for (std::size_t i = 0; i < moved.size(); ++i) {
    const NodeId id = moved[i];
    Vec2 p = new_positions[i];
    p.x = std::clamp(p.x, 0.0, side_);
    p.y = std::clamp(p.y, 0.0, side_);
    positions_[id] = p;
    mover_stamp_[id] = stamp_epoch_;
    const auto c = static_cast<std::uint32_t>(cell_index(p));
    if (c != cell_of_[id]) {
      grid_unlink(id);
      grid_link(id, c);
      ++maint_.cell_rebuckets;
    }
  }
  // Phase 2: a unit-disk edge flips only if an endpoint moved, so
  // rescanning the movers covers every change.  Diffing a mover's new
  // list against its old one yields the flipped edges; non-mover
  // endpoints get a sorted one-element patch, mover endpoints rebuild
  // their own lists anyway.  Mover-mover flips surface in both scans
  // and are emitted once (from the lower id).
  for (const NodeId m : moved) {
    const auto old_list = neighbors(m);
    scratch_old_.assign(old_list.begin(), old_list.end());
    scratch_new_.clear();
    scan_into(scratch_new_, positions_[m], range_, m);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < scratch_old_.size() || j < scratch_new_.size()) {
      if (j == scratch_new_.size() ||
          (i < scratch_old_.size() && scratch_old_[i] < scratch_new_[j])) {
        const NodeId v = scratch_old_[i++];
        const bool v_moved = mover_stamp_[v] == stamp_epoch_;
        if (!v_moved) patch_erase(v, m);
        if (!v_moved || v > m) {
          ++maint_.edges_removed;
          if (diff != nullptr) {
            diff->push_back({std::min(m, v), std::max(m, v), false});
          }
        }
      } else if (i == scratch_old_.size() ||
                 scratch_new_[j] < scratch_old_[i]) {
        const NodeId v = scratch_new_[j++];
        const bool v_moved = mover_stamp_[v] == stamp_epoch_;
        if (!v_moved) patch_insert(v, m);
        if (!v_moved || v > m) {
          ++maint_.edges_added;
          if (diff != nullptr) {
            diff->push_back({std::min(m, v), std::max(m, v), true});
          }
        }
      } else {
        ++i;
        ++j;
      }
    }
    store_list(m, scratch_new_);
    ++maint_.movers_rescanned;
  }
  // Compact once dead slots and slack outweigh live data.
  if (nbr_pool_.size() > 1024 && nbr_pool_.size() > 2 * total_degree_) {
    compact_pool();
  }
}

NodeId Topology::add_node(Vec2 pos) {
  const auto id = static_cast<NodeId>(positions_.size());
  positions_.push_back(pos);
  // Keep the spatial index in the O(1)-insert linked shape; when the
  // CSR twin was active this converts it (one linear pass, cheaper than
  // the old per-edge CSR splicing ever was).
  if (!grid_linked_) {
    ensure_linked_grid();  // covers the freshly pushed node too
  } else {
    grid_next_.push_back(kNoNode);
    grid_prev_.push_back(kNoNode);
    cell_of_.push_back(0);
    grid_link(id, static_cast<std::uint32_t>(cell_index(pos)));
  }
  if (!mover_stamp_.empty()) mover_stamp_.push_back(0);
  const std::vector<NodeId> nbrs = scan_neighbors(pos, range_, id);
  for (const NodeId neighbor : nbrs) patch_insert(neighbor, id);
  nbr_begin_.push_back(static_cast<std::uint32_t>(nbr_pool_.size()));
  nbr_count_.push_back(0);
  nbr_cap_.push_back(0);
  store_list(id, nbrs);
  return id;
}

}  // namespace ldke::net
