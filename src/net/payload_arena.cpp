#include "net/payload_arena.hpp"

#include <algorithm>
#include <new>

namespace ldke::net {

thread_local PayloadArena* PayloadArena::current_ = nullptr;

PayloadArena::~PayloadArena() {
  for (Chunk& chunk : chunks_) release_chunk(chunk);
  for (Chunk& chunk : retired_) release_chunk(chunk);
  for (Chunk& chunk : free_chunks_) release_chunk(chunk);
}

PayloadArena::Chunk PayloadArena::new_chunk(std::size_t capacity) {
  void* raw = ::operator new(sizeof(detail::PayloadOwner) + capacity);
  Chunk chunk;
  // The arena's own reference; dropped when the chunk is released.
  chunk.owner = ::new (raw) detail::PayloadOwner{{1}};
  chunk.capacity = capacity;
  return chunk;
}

void PayloadArena::release_chunk(Chunk& chunk) noexcept {
  // Drop the arena's reference; the last outstanding PayloadRef (or this
  // call, if none remain) frees the allocation.
  if (chunk.owner->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    ::operator delete(chunk.owner);
  }
  chunk.owner = nullptr;
}

detail::PayloadBlock* PayloadArena::allocate(std::size_t n) {
  const std::size_t need = sizeof(detail::PayloadBlock) + ((n + 7) & ~std::size_t{7});
  if (chunks_.empty() || chunks_.back().used + need > chunks_.back().capacity) {
    if (!free_chunks_.empty() && free_chunks_.back().capacity >= need) {
      chunks_.push_back(free_chunks_.back());
      free_chunks_.pop_back();
    } else {
      chunks_.push_back(new_chunk(std::max(need, chunk_bytes_)));
    }
  }
  Chunk& chunk = chunks_.back();
  auto* base = reinterpret_cast<std::byte*>(chunk.owner + 1) + chunk.used;
  auto* block = ::new (base) detail::PayloadBlock{
      chunk.owner, static_cast<std::uint32_t>(n)};
  chunk.used += need;
  chunk.owner->refs.fetch_add(1, std::memory_order_relaxed);
  ++blocks_allocated_;
  return block;
}

void PayloadArena::reset() noexcept {
  // Retired chunks go through the same triage as live ones: anything
  // still referenced is handed to its last PayloadRef.
  for (Chunk& chunk : retired_) chunks_.push_back(chunk);
  retired_.clear();
  for (Chunk& chunk : chunks_) {
    // refs == 1 means only the arena still references the chunk: every
    // payload carved from it has been destroyed, so it can be reused.
    if (chunk.owner->refs.load(std::memory_order_acquire) == 1) {
      chunk.used = 0;
      free_chunks_.push_back(chunk);
    } else {
      release_chunk(chunk);
    }
  }
  chunks_.clear();
}

void PayloadArena::advance_generation() noexcept {
  for (Chunk& chunk : chunks_) retired_.push_back(chunk);
  chunks_.clear();
  ++generation_;
  reclaim();
}

void PayloadArena::reclaim() noexcept {
  std::erase_if(retired_, [this](Chunk& chunk) {
    if (chunk.owner->refs.load(std::memory_order_acquire) != 1) {
      return false;  // in-flight payloads still pin it; sweep again later
    }
    chunk.used = 0;
    free_chunks_.push_back(chunk);
    return true;
  });
}

}  // namespace ldke::net
