#pragma once
/// \file packet.hpp
/// Over-the-air frame.  The payload is opaque protocol bytes (usually
/// ciphertext); `kind` is the cleartext link-layer type tag that lets a
/// receiver dispatch without decrypting.

#include <cstdint>

#include "net/payload.hpp"
#include "net/topology.hpp"
#include "support/hex.hpp"

namespace ldke::net {

/// Link-layer message types across all protocols in this repository.
enum class PacketKind : std::uint8_t {
  kHello = 1,       ///< cluster-head announcement (§IV-B.1)
  kLinkAdvert = 2,  ///< cluster-key advertisement (§IV-B.2)
  kData = 3,        ///< hop-by-hop protected data (§IV-C)
  kBeacon = 4,      ///< routing gradient beacon
  kRevoke = 5,      ///< base-station revocation command (§IV-D)
  kJoin = 6,        ///< new-node hello (§IV-E)
  kJoinReply = 7,   ///< CID advertisement to a joining node (§IV-E)
  kRefresh = 8,     ///< cluster-key refresh announcement (§IV-C)
  kBaseline = 9,    ///< baseline-scheme traffic (src/baselines)
  kReclusterHello = 10,  ///< head announcement of a re-clustering round
  kReclusterLink = 11,   ///< link advert of a re-clustering round
  kAuthBroadcast = 12,   ///< µTESLA-authenticated base-station command
  kKeyDisclosure = 13,   ///< µTESLA interval-key disclosure
  kInterest = 14,        ///< directed-diffusion interest flood
  kDiffData = 15,        ///< directed-diffusion data (exploratory or path)
  kReinforce = 16,       ///< directed-diffusion path reinforcement
};

/// One past the largest PacketKind value — sizes dispatch tables.
inline constexpr std::size_t kPacketKindCount = 17;

/// Physical-layer framing overhead charged per transmission, matching a
/// mote-era stack (preamble + sync + len + CRC), in bytes.
inline constexpr std::size_t kFrameOverheadBytes = 11;

struct Packet {
  NodeId sender = kNoNode;
  PacketKind kind = PacketKind::kData;
  /// Immutable shared bytes: copying a Packet (per-receiver delivery,
  /// sniffer capture, forwarding) bumps a refcount instead of cloning
  /// the buffer.  See payload.hpp.
  PayloadRef payload;

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return kFrameOverheadBytes + payload.size();
  }
};

}  // namespace ldke::net
