#include "net/network.hpp"

#include <algorithm>
#include <cmath>

namespace ldke::net {

Network::Network(sim::Simulator& sim, Topology topology,
                 ChannelConfig channel_cfg, EnergyConfig energy_cfg)
    : sim_(sim),
      topology_(std::move(topology)),
      energy_(energy_cfg),
      channel_(sim, topology_, energy_, counters_, channel_cfg) {
  energy_.resize(topology_.size());
  nodes_.resize(topology_.size(), nullptr);
  channel_.set_delivery_handler(
      [this](NodeId receiver, const Packet& packet) {
        dispatch(receiver, packet);
      });
  channel_.set_batch_delivery_handler(
      [this](std::span<const NodeId> receivers, const Packet& packet) {
        dispatch_batch(receivers, packet);
      });
}

std::uint32_t Network::lane_for_position(Vec2 pos) const noexcept {
  const std::size_t lanes = kernel_ != nullptr ? kernel_->lane_count() : 1;
  if (lanes <= 1 || topology_.side() <= 0.0) return 0;
  const auto raw = static_cast<std::int64_t>(
      std::floor(pos.x / topology_.side() * static_cast<double>(lanes)));
  return static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(raw, 0, static_cast<std::int64_t>(lanes) - 1));
}

void Network::enable_lanes(sim::ShardedKernel& kernel) {
  kernel_ = &kernel;
  const std::size_t lanes = kernel.lane_count();
  lane_of_.resize(topology_.size());
  for (NodeId id = 0; id < topology_.size(); ++id) {
    lane_of_[id] = lane_for_position(topology_.position(id));
  }
  lane_counters_.clear();
  lane_counters_.push_back(&counters_);
  extra_counters_.clear();
  for (std::size_t l = 1; l < lanes; ++l) {
    extra_counters_.push_back(std::make_unique<sim::TraceCounters>());
    lane_counters_.push_back(extra_counters_.back().get());
  }
  channel_.enable_lanes(kernel, lane_of_, lane_counters_);
  if (audit_sink_ != nullptr) audit_sink_->enable_lanes(lanes);
}

void Network::fold_lane_metrics() {
  for (auto& extra : extra_counters_) {
    counters_.merge_from(*extra);
  }
}

void Network::ensure_scenario_gating() {
  if (scenario_gating_) return;
  scenario_gating_ = true;
  channel_.set_delivery_gate([this](NodeId receiver) {
    return is_active(receiver);
  });
}

void Network::set_asleep(NodeId id, bool asleep) {
  ensure_scenario_gating();
  if (id >= radio_state_.size()) {
    radio_state_.resize(std::max<std::size_t>(topology_.size(), id + 1),
                        RadioState::kActive);
  }
  if (radio_state_[id] == RadioState::kGone) return;
  radio_state_[id] = asleep ? RadioState::kAsleep : RadioState::kActive;
}

void Network::mark_gone(NodeId id) {
  ensure_scenario_gating();
  if (id >= radio_state_.size()) {
    radio_state_.resize(std::max<std::size_t>(topology_.size(), id + 1),
                        RadioState::kActive);
  }
  radio_state_[id] = RadioState::kGone;
  if (id < nodes_.size()) nodes_[id] = nullptr;
}

void Network::set_partition_x(double x) {
  partition_x_ = x;
  channel_.set_link_gate([this](NodeId sender, NodeId receiver) {
    if (!partition_x_) return true;
    // External transmitters (attacker hardware) are outside the topology
    // and outside the scripted wall.
    if (sender >= topology_.size()) return true;
    const bool a = topology_.position(sender).x < *partition_x_;
    const bool b = topology_.position(receiver).x < *partition_x_;
    return a == b;
  });
}

void Network::attach(Node& node) {
  if (node.id() >= nodes_.size()) nodes_.resize(node.id() + 1, nullptr);
  nodes_[node.id()] = &node;
}

NodeId Network::deploy_position(Vec2 pos) {
  const NodeId id = topology_.add_node(pos);
  energy_.resize(topology_.size());
  if (id >= nodes_.size()) nodes_.resize(id + 1, nullptr);
  if (kernel_ != nullptr) {
    lane_of_.resize(topology_.size(), 0);
    lane_of_[id] = lane_for_position(pos);
  }
  return id;
}

void Network::start_all() {
  for (Node* node : nodes_) {
    if (node == nullptr) continue;
    if (kernel_ != nullptr) {
      // Bind the (serial) starting thread to the node's home lane so its
      // kick-off timers land in that lane's scheduler.
      sim::ShardedKernel::LaneScope scope{*kernel_, lane_of_[node->id()]};
      node->start(*this);
    } else {
      node->start(*this);
    }
  }
}

void Network::dispatch(NodeId receiver, const Packet& packet) {
  if (receiver < nodes_.size() && nodes_[receiver] != nullptr) {
    nodes_[receiver]->handle_packet(*this, packet);
  }
}

void Network::dispatch_batch(std::span<const NodeId> receivers,
                             const Packet& packet) {
  // One coalesced delivery event fans out to each receiver's behaviour
  // in the scalar per-receiver order.
  for (NodeId receiver : receivers) dispatch(receiver, packet);
}

}  // namespace ldke::net
