#include "net/network.hpp"

namespace ldke::net {

Network::Network(sim::Simulator& sim, Topology topology,
                 ChannelConfig channel_cfg, EnergyConfig energy_cfg)
    : sim_(sim),
      topology_(std::move(topology)),
      energy_(energy_cfg),
      channel_(sim, topology_, energy_, counters_, channel_cfg) {
  energy_.resize(topology_.size());
  nodes_.resize(topology_.size(), nullptr);
  channel_.set_delivery_handler(
      [this](NodeId receiver, const Packet& packet) {
        dispatch(receiver, packet);
      });
}

void Network::attach(Node& node) {
  if (node.id() >= nodes_.size()) nodes_.resize(node.id() + 1, nullptr);
  nodes_[node.id()] = &node;
}

NodeId Network::deploy_position(Vec2 pos) {
  const NodeId id = topology_.add_node(pos);
  energy_.resize(topology_.size());
  if (id >= nodes_.size()) nodes_.resize(id + 1, nullptr);
  return id;
}

void Network::start_all() {
  for (Node* node : nodes_) {
    if (node != nullptr) node->start(*this);
  }
}

void Network::dispatch(NodeId receiver, const Packet& packet) {
  if (receiver < nodes_.size() && nodes_[receiver] != nullptr) {
    nodes_[receiver]->handle_packet(*this, packet);
  }
}

}  // namespace ldke::net
