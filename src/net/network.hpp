#pragma once
/// \file network.hpp
/// Glue object for one simulated deployment: topology + channel + energy
/// accounting + the registry of attached node behaviours.  Nodes are
/// owned by higher layers and registered here non-owning, so the same
/// substrate serves the LDKE protocol, every baseline scheme and the
/// attack harnesses.

#include <cstdint>
#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "obs/delivery.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ldke::net {

class Network {
 public:
  Network(sim::Simulator& sim, Topology topology, ChannelConfig channel_cfg = {},
          EnergyConfig energy_cfg = {});

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] Channel& channel() noexcept { return channel_; }
  [[nodiscard]] EnergyModel& energy() noexcept { return energy_; }

  /// The trial's metric registry.  Under a sharded kernel each lane
  /// thread gets its own registry (counter increments from node event
  /// handlers stay lane-local); fold_lane_metrics() folds the extras
  /// back into the main registry after the run.
  [[nodiscard]] sim::TraceCounters& counters() noexcept {
    if (!lane_counters_.empty()) {
      return *lane_counters_[sim::ShardedKernel::current_lane()];
    }
    return counters_;
  }

  // ---- spatial lanes (sharded kernel) ----------------------------------

  /// Partitions the deployment into \p kernel.lane_count() vertical
  /// strips (by x position), switches the channel onto cross-lane halo
  /// delivery and gives every lane its own metric registry.  Call before
  /// start_all().
  void enable_lanes(sim::ShardedKernel& kernel);

  /// Home lane of \p id (0 when lanes are off).
  [[nodiscard]] std::uint32_t lane_of(NodeId id) const noexcept {
    return id < lane_of_.size() ? lane_of_[id] : 0;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& lane_map() const noexcept {
    return lane_of_;
  }

  /// Folds the per-lane registries into the main one, in lane order (so
  /// the result is independent of thread scheduling).  Idempotent.
  void fold_lane_metrics();

  /// Optional end-to-end DATA delivery tracker; protocol layers call
  /// these at origination (a reading leaves its source) and delivery
  /// (the final destination authenticates it).  No-ops when unset.
  void set_delivery_tracker(obs::DeliveryTracker* tracker) noexcept {
    delivery_tracker_ = tracker;
  }
  [[nodiscard]] obs::DeliveryTracker* delivery_tracker() noexcept {
    return delivery_tracker_;
  }

  /// Registers the behaviour for an existing topology slot.
  void attach(Node& node);

  /// Deploys a brand-new node at \p pos (used by §IV-E node addition):
  /// extends the topology, then the caller constructs a Node with the
  /// returned id and attaches it.
  NodeId deploy_position(Vec2 pos);

  [[nodiscard]] Node* node(NodeId id) noexcept {
    return id < nodes_.size() ? nodes_[id] : nullptr;
  }

  /// Calls start() on every attached node (in id order).
  void start_all();

  /// Broadcasts a packet from its sender to all radio neighbors.
  void broadcast(const Packet& packet) { channel_.broadcast(packet); }

  /// Batched broadcast through Channel::deliver_batch: bit-identical
  /// deliveries, one coalesced event per (packet, destination lane).
  void deliver_batch(const PacketBatch& batch) {
    channel_.deliver_batch(batch);
  }

 private:
  void dispatch(NodeId receiver, const Packet& packet);
  void dispatch_batch(std::span<const NodeId> receivers, const Packet& packet);

  [[nodiscard]] std::uint32_t lane_for_position(Vec2 pos) const noexcept;

  sim::Simulator& sim_;
  Topology topology_;
  EnergyModel energy_;
  sim::TraceCounters counters_;
  Channel channel_;
  std::vector<Node*> nodes_;
  obs::DeliveryTracker* delivery_tracker_ = nullptr;
  // Lane state (empty while running serially).
  sim::ShardedKernel* kernel_ = nullptr;
  std::vector<std::uint32_t> lane_of_;  ///< node id -> home lane
  std::vector<sim::TraceCounters*> lane_counters_;  ///< [0] == &counters_
  std::vector<std::unique_ptr<sim::TraceCounters>> extra_counters_;
};

}  // namespace ldke::net
