#pragma once
/// \file network.hpp
/// Glue object for one simulated deployment: topology + channel + energy
/// accounting + the registry of attached node behaviours.  Nodes are
/// owned by higher layers and registered here non-owning, so the same
/// substrate serves the LDKE protocol, every baseline scheme and the
/// attack harnesses.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "net/channel.hpp"
#include "obs/audit.hpp"
#include "obs/delivery.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ldke::net {

/// Radio lifecycle of a deployed node, driven by the scenario layer.
/// Everything historical runs with every node kActive; the other states
/// gate the channel (no rx, no tx) without destroying the behaviour
/// object — in-flight events may still reference it.
enum class RadioState : std::uint8_t {
  kActive,  ///< normal operation
  kAsleep,  ///< duty-cycled off: hears nothing, transmits nothing
  kGone,    ///< left or failed: permanently off, behaviour detached
};

class Network {
 public:
  Network(sim::Simulator& sim, Topology topology, ChannelConfig channel_cfg = {},
          EnergyConfig energy_cfg = {});

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] Channel& channel() noexcept { return channel_; }
  [[nodiscard]] EnergyModel& energy() noexcept { return energy_; }

  /// The trial's metric registry.  Under a sharded kernel each lane
  /// thread gets its own registry (counter increments from node event
  /// handlers stay lane-local); fold_lane_metrics() folds the extras
  /// back into the main registry after the run.
  [[nodiscard]] sim::TraceCounters& counters() noexcept {
    if (!lane_counters_.empty()) {
      return *lane_counters_[sim::ShardedKernel::current_lane()];
    }
    return counters_;
  }

  // ---- spatial lanes (sharded kernel) ----------------------------------

  /// Partitions the deployment into \p kernel.lane_count() vertical
  /// strips (by x position), switches the channel onto cross-lane halo
  /// delivery and gives every lane its own metric registry.  Call before
  /// start_all().
  void enable_lanes(sim::ShardedKernel& kernel);

  /// Home lane of \p id (0 when lanes are off).
  [[nodiscard]] std::uint32_t lane_of(NodeId id) const noexcept {
    return id < lane_of_.size() ? lane_of_[id] : 0;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& lane_map() const noexcept {
    return lane_of_;
  }

  /// Folds the per-lane registries into the main one, in lane order (so
  /// the result is independent of thread scheduling).  Idempotent.
  void fold_lane_metrics();

  /// Optional end-to-end DATA delivery tracker; protocol layers call
  /// these at origination (a reading leaves its source) and delivery
  /// (the final destination authenticates it).  No-ops when unset.
  void set_delivery_tracker(obs::DeliveryTracker* tracker) noexcept {
    delivery_tracker_ = tracker;
  }
  [[nodiscard]] obs::DeliveryTracker* delivery_tracker() noexcept {
    return delivery_tracker_;
  }

  /// Optional security-audit event stream.  The sink is sized to the
  /// current lane count on attach (and re-sized by enable_lanes), so
  /// protocol layers emit through audit() with no lane bookkeeping.
  void set_audit_sink(obs::AuditSink* sink) {
    audit_sink_ = sink;
    if (sink != nullptr) sink->enable_lanes(lane_count());
  }
  [[nodiscard]] obs::AuditSink* audit_sink() noexcept { return audit_sink_; }

  /// Optional synchronous tap on the same stream (incremental health
  /// accounting).  Unlike the sink it never evicts: the listener sees
  /// every event, in emission order.  Serial engines only — the sharded
  /// kernel would dispatch concurrently.
  void set_audit_listener(obs::AuditListener* listener) noexcept {
    audit_listener_ = listener;
  }
  [[nodiscard]] obs::AuditListener* audit_listener() const noexcept {
    return audit_listener_;
  }

  /// Records one protocol lifecycle event at the current sim time.  A
  /// single predictable branch when no sink is attached — cheap enough
  /// for per-envelope sites like replay rejection.
  void audit(obs::AuditKind kind, std::uint32_t actor,
             std::uint32_t subject = obs::kAuditNoSubject,
             std::uint64_t arg = 0) {
    if (audit_sink_ == nullptr && audit_listener_ == nullptr) return;
    const obs::AuditEvent event{sim_.now().ns(), actor, subject, arg, kind};
    if (audit_sink_ != nullptr) audit_sink_->record(record_lane(), event);
    if (audit_listener_ != nullptr) audit_listener_->on_audit(event);
  }

  /// Shard index recorders (audit sink, packet trace) should write to
  /// from the calling thread: the running lane, or 0 serially.
  [[nodiscard]] std::size_t record_lane() const noexcept {
    return kernel_ != nullptr ? sim::ShardedKernel::current_lane() : 0;
  }
  [[nodiscard]] std::size_t lane_count() const noexcept {
    return lane_counters_.empty() ? 1 : lane_counters_.size();
  }

  // ---- scenario radio state (mobility / churn / duty cycling) ---------

  /// Current radio state; nodes never touched by a scenario are active.
  [[nodiscard]] RadioState radio_state(NodeId id) const noexcept {
    return id < radio_state_.size() ? radio_state_[id] : RadioState::kActive;
  }
  [[nodiscard]] bool is_active(NodeId id) const noexcept {
    return radio_state(id) == RadioState::kActive;
  }

  /// Duty cycling: an asleep radio neither receives (frames in flight
  /// drop as `pkt.dropped_gone`) nor transmits (`pkt.tx_gated`).  No-op
  /// on a node that already left.
  void set_asleep(NodeId id, bool asleep);

  /// Churn: the node left the network (gracefully or by failure).  Its
  /// behaviour is detached so nothing ever dispatches into the slot
  /// again; the id is never recycled.
  void mark_gone(NodeId id);

  /// Scripted partition: a vertical wall at \p x blocks every link that
  /// crosses it (checked against current positions at transmit time).
  void set_partition_x(double x);
  /// Heal event: removes the partition wall.
  void clear_partition() noexcept { partition_x_.reset(); }
  [[nodiscard]] std::optional<double> partition_x() const noexcept {
    return partition_x_;
  }

  /// Mobility epoch: moves every node and rebuilds the topology's
  /// neighbor lists.  \p positions must cover every deployed id.
  void update_positions(std::span<const Vec2> positions) {
    topology_.update_positions(positions);
  }

  /// Incremental mobility epoch: moves only the listed nodes and
  /// patches the topology in place (see Topology::apply_displacements).
  void apply_displacements(std::span<const NodeId> moved,
                           std::span<const Vec2> new_positions,
                           std::vector<EdgeChange>* diff = nullptr) {
    topology_.apply_displacements(moved, new_positions, diff);
  }

  /// Registers the behaviour for an existing topology slot.
  void attach(Node& node);

  /// Deploys a brand-new node at \p pos (used by §IV-E node addition):
  /// extends the topology, then the caller constructs a Node with the
  /// returned id and attaches it.
  NodeId deploy_position(Vec2 pos);

  [[nodiscard]] Node* node(NodeId id) noexcept {
    return id < nodes_.size() ? nodes_[id] : nullptr;
  }

  /// Calls start() on every attached node (in id order).
  void start_all();

  /// Broadcasts a packet from its sender to all radio neighbors.  A
  /// sender whose radio is asleep or gone transmits nothing (timers may
  /// still fire inside a sleeping node; the frame dies at the antenna
  /// and counts as `pkt.tx_gated`).
  void broadcast(const Packet& packet) {
    if (scenario_gating_ && !is_active(packet.sender)) {
      counters().increment("pkt.tx_gated");
      return;
    }
    channel_.broadcast(packet);
  }

  /// Batched broadcast through Channel::deliver_batch: bit-identical
  /// deliveries, one coalesced event per (packet, destination lane).
  /// Applies the same sender gate as broadcast() — an asleep/gone
  /// origin transmits nothing and counts as `pkt.tx_gated` — so scalar
  /// and batched runs tally and trace identically under scenarios.
  void deliver_batch(const PacketBatch& batch) {
    if (scenario_gating_) {
      PacketBatch gated;
      gated.reserve(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!is_active(batch.senders()[i])) {
          counters().increment("pkt.tx_gated");
          continue;
        }
        gated.push(batch.packet(i));
      }
      if (!gated.empty()) channel_.deliver_batch(gated);
      return;
    }
    channel_.deliver_batch(batch);
  }

 private:
  void dispatch(NodeId receiver, const Packet& packet);
  void dispatch_batch(std::span<const NodeId> receivers, const Packet& packet);

  [[nodiscard]] std::uint32_t lane_for_position(Vec2 pos) const noexcept;

  /// Installs the channel's delivery gate the first time any node goes
  /// non-active — the gate std::function stays off the hot path for
  /// every static deployment.
  void ensure_scenario_gating();

  sim::Simulator& sim_;
  Topology topology_;
  EnergyModel energy_;
  sim::TraceCounters counters_;
  Channel channel_;
  std::vector<Node*> nodes_;
  obs::DeliveryTracker* delivery_tracker_ = nullptr;
  obs::AuditSink* audit_sink_ = nullptr;
  obs::AuditListener* audit_listener_ = nullptr;
  // Scenario state (empty / unset on static deployments).
  std::vector<RadioState> radio_state_;  ///< empty = everyone active
  std::optional<double> partition_x_;
  bool scenario_gating_ = false;
  // Lane state (empty while running serially).
  sim::ShardedKernel* kernel_ = nullptr;
  std::vector<std::uint32_t> lane_of_;  ///< node id -> home lane
  std::vector<sim::TraceCounters*> lane_counters_;  ///< [0] == &counters_
  std::vector<std::unique_ptr<sim::TraceCounters>> extra_counters_;
};

}  // namespace ldke::net
