#pragma once
/// \file network.hpp
/// Glue object for one simulated deployment: topology + channel + energy
/// accounting + the registry of attached node behaviours.  Nodes are
/// owned by higher layers and registered here non-owning, so the same
/// substrate serves the LDKE protocol, every baseline scheme and the
/// attack harnesses.

#include <vector>

#include "net/channel.hpp"
#include "obs/delivery.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ldke::net {

class Network {
 public:
  Network(sim::Simulator& sim, Topology topology, ChannelConfig channel_cfg = {},
          EnergyConfig energy_cfg = {});

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] Channel& channel() noexcept { return channel_; }
  [[nodiscard]] EnergyModel& energy() noexcept { return energy_; }
  [[nodiscard]] sim::TraceCounters& counters() noexcept { return counters_; }

  /// Optional end-to-end DATA delivery tracker; protocol layers call
  /// these at origination (a reading leaves its source) and delivery
  /// (the final destination authenticates it).  No-ops when unset.
  void set_delivery_tracker(obs::DeliveryTracker* tracker) noexcept {
    delivery_tracker_ = tracker;
  }
  [[nodiscard]] obs::DeliveryTracker* delivery_tracker() noexcept {
    return delivery_tracker_;
  }

  /// Registers the behaviour for an existing topology slot.
  void attach(Node& node);

  /// Deploys a brand-new node at \p pos (used by §IV-E node addition):
  /// extends the topology, then the caller constructs a Node with the
  /// returned id and attaches it.
  NodeId deploy_position(Vec2 pos);

  [[nodiscard]] Node* node(NodeId id) noexcept {
    return id < nodes_.size() ? nodes_[id] : nullptr;
  }

  /// Calls start() on every attached node (in id order).
  void start_all();

  /// Broadcasts a packet from its sender to all radio neighbors.
  void broadcast(const Packet& packet) { channel_.broadcast(packet); }

 private:
  void dispatch(NodeId receiver, const Packet& packet);

  sim::Simulator& sim_;
  Topology topology_;
  EnergyModel energy_;
  sim::TraceCounters counters_;
  Channel channel_;
  std::vector<Node*> nodes_;
  obs::DeliveryTracker* delivery_tracker_ = nullptr;
};

}  // namespace ldke::net
