#pragma once
/// \file packet_batch.hpp
/// Structure-of-arrays packet batch for the steady-state data plane.
/// The scalar path hands the channel one Packet at a time; the batched
/// path accumulates a tick's originations here and releases them through
/// Channel::deliver_batch, so fan-out and dispatch touch dense parallel
/// arrays instead of chasing one envelope per call.  A PacketBatch is a
/// staging buffer, not a wire format: packet(i) reconstitutes the exact
/// AoS Packet, and the batched pipeline is bit-identical to pushing each
/// packet through Channel::broadcast individually.

#include <cstddef>
#include <vector>

#include "net/packet.hpp"
#include "net/payload.hpp"
#include "net/topology.hpp"

namespace ldke::net {

class PacketBatch {
 public:
  void reserve(std::size_t n) {
    senders_.reserve(n);
    kinds_.reserve(n);
    payloads_.reserve(n);
  }

  void push(NodeId sender, PacketKind kind, PayloadRef payload) {
    senders_.push_back(sender);
    kinds_.push_back(kind);
    payloads_.push_back(std::move(payload));
  }

  void push(const Packet& packet) {
    push(packet.sender, packet.kind, packet.payload);
  }

  void clear() noexcept {
    senders_.clear();
    kinds_.clear();
    payloads_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return senders_.size(); }
  [[nodiscard]] bool empty() const noexcept { return senders_.empty(); }

  [[nodiscard]] std::span<const NodeId> senders() const noexcept {
    return senders_;
  }
  [[nodiscard]] std::span<const PacketKind> kinds() const noexcept {
    return kinds_;
  }
  [[nodiscard]] std::span<const PayloadRef> payloads() const noexcept {
    return payloads_;
  }

  /// AoS view of entry \p i (payload refcount bump, no byte copy).
  [[nodiscard]] Packet packet(std::size_t i) const {
    return Packet{senders_[i], kinds_[i], payloads_[i]};
  }

 private:
  std::vector<NodeId> senders_;
  std::vector<PacketKind> kinds_;
  std::vector<PayloadRef> payloads_;
};

}  // namespace ldke::net
