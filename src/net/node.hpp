#pragma once
/// \file node.hpp
/// Behavioural interface for anything attached to the network: protocol
/// sensor nodes, base stations, baseline-scheme nodes, attacker sniffers.

#include "net/packet.hpp"
#include "net/topology.hpp"

namespace ldke::net {

class Network;

class Node {
 public:
  explicit Node(NodeId id) : id_(id) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Invoked once when the simulation starts (schedule initial timers).
  virtual void start(Network& /*net*/) {}

  /// Invoked for every packet the radio delivers to this node.
  virtual void handle_packet(Network& net, const Packet& packet) = 0;

 private:
  NodeId id_;
};

}  // namespace ldke::net
