#pragma once
/// \file pairwise.hpp
/// Full pairwise keying: every neighbor pair shares a unique key.  The
/// paper's §I dismisses the all-pairs variant on storage grounds; the
/// neighbor-pairs variant shown here is the strongest-resilience /
/// highest-broadcast-cost corner of the design space.

#include <vector>

#include "baselines/scheme.hpp"

namespace ldke::baselines {

class PairwiseScheme final : public KeyScheme {
 public:
  /// \p preloaded_all_pairs models the naive variant where each node is
  /// manufactured with a key for *every* other node in the network
  /// (storage = n-1), versus establishing keys only with actual
  /// neighbors.
  explicit PairwiseScheme(bool preloaded_all_pairs = false)
      : preloaded_all_pairs_(preloaded_all_pairs) {}

  [[nodiscard]] std::string_view name() const override {
    return preloaded_all_pairs_ ? "pairwise (all pairs)"
                                : "pairwise (neighbors)";
  }

  void setup(const net::Topology& topo, support::Xoshiro256& rng) override;

  [[nodiscard]] std::size_t keys_stored(NodeId id) const override;
  [[nodiscard]] std::uint64_t setup_transmissions() const override;
  [[nodiscard]] std::size_t broadcast_transmissions(NodeId id) const override;
  [[nodiscard]] bool link_secured(NodeId, NodeId) const override {
    return true;
  }
  [[nodiscard]] double compromised_link_fraction(
      std::span<const NodeId> captured,
      const LinkFilter* filter = nullptr) const override;

 private:
  bool preloaded_all_pairs_;
  std::vector<std::size_t> degree_;
};

}  // namespace ldke::baselines
