#pragma once
/// \file scheme.hpp
/// Common interface for the key-management schemes the paper compares
/// against (§III): pebblenets' global key [4], full pairwise keying,
/// Eschenauer–Gligor random predistribution [7], q-composite [8] and
/// LEAP [11].  These are evaluated at graph level over the same
/// Topology the packet-level protocol uses; the metrics are the ones the
/// paper argues about — storage, broadcast cost, and resilience to node
/// capture.

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "support/rng.hpp"

namespace ldke::baselines {

using net::NodeId;

/// Undirected radio edge (u < v).
using Edge = std::pair<NodeId, NodeId>;

/// All undirected edges of the communication graph.
[[nodiscard]] std::vector<Edge> undirected_edges(const net::Topology& topo);

class KeyScheme {
 public:
  virtual ~KeyScheme() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Establishes key material for every node of \p topo.
  virtual void setup(const net::Topology& topo, support::Xoshiro256& rng) = 0;

  /// Keys a node must store at steady state (storage metric).
  [[nodiscard]] virtual std::size_t keys_stored(NodeId id) const = 0;

  /// Total transmissions the bootstrap phase needs (communication
  /// overhead metric; the paper's Fig 9 analogue).
  [[nodiscard]] virtual std::uint64_t setup_transmissions() const = 0;

  /// Encrypted transmissions needed for \p id to broadcast one message
  /// to all of its neighbors (the paper's energy argument, §II).
  [[nodiscard]] virtual std::size_t broadcast_transmissions(
      NodeId id) const = 0;

  /// Whether neighbors \p u and \p v can communicate securely at all
  /// (random predistribution gives probabilistic connectivity).
  [[nodiscard]] virtual bool link_secured(NodeId u, NodeId v) const = 0;

  /// Optional restriction of the resilience metric to a subset of links
  /// (e.g. only links far away from every captured node — the locality
  /// axis of §VI).  Returns true if the link (u, v) should be counted.
  using LinkFilter = std::function<bool(NodeId u, NodeId v)>;

  /// Fraction of secured links between *uncaptured* nodes whose traffic
  /// an adversary holding the key material of \p captured can read.
  /// This is the §VI resilience metric.  When \p filter is non-null only
  /// links it accepts enter numerator and denominator.
  [[nodiscard]] virtual double compromised_link_fraction(
      std::span<const NodeId> captured,
      const LinkFilter* filter = nullptr) const = 0;

  /// Fraction of neighbor pairs that ended up with a secure link.
  [[nodiscard]] double secure_connectivity() const;

 protected:
  [[nodiscard]] const net::Topology* topology() const noexcept {
    return topo_;
  }
  void remember_topology(const net::Topology& topo) noexcept { topo_ = &topo; }

 private:
  const net::Topology* topo_ = nullptr;
};

}  // namespace ldke::baselines
