#pragma once
/// \file random_predist.hpp
/// Random key predistribution baselines (§III):
///  - Eschenauer–Gligor basic scheme [7]: each node draws a ring of m
///    keys from a pool of P; a link is secured by any one shared key.
///  - Chan–Perrig–Song q-composite [8]: a link needs >= q shared keys and
///    its key is the hash of all of them.
///
/// The paper's critique: "the more keys are stored in a node, the more
/// links become compromised (even not neighboring ones) in case of node
/// capture ... these schemes offer only probabilistic security".  The
/// resilience metric here quantifies exactly that.

#include <cstdint>
#include <vector>

#include "baselines/scheme.hpp"

namespace ldke::baselines {

struct RandomPredistConfig {
  std::uint32_t pool_size = 10000;  ///< P
  std::uint32_t ring_size = 83;     ///< m (p_share ≈ 0.5 at these defaults)
  std::uint32_t q = 1;              ///< required shared keys (1 = EG basic)
};

class RandomPredistScheme final : public KeyScheme {
 public:
  explicit RandomPredistScheme(RandomPredistConfig config = {})
      : config_(config) {}

  [[nodiscard]] std::string_view name() const override {
    return config_.q <= 1 ? "random predistribution (EG)"
                          : "random predistribution (q-composite)";
  }

  void setup(const net::Topology& topo, support::Xoshiro256& rng) override;

  [[nodiscard]] std::size_t keys_stored(NodeId) const override {
    return config_.ring_size;
  }
  [[nodiscard]] std::uint64_t setup_transmissions() const override;
  [[nodiscard]] std::size_t broadcast_transmissions(NodeId id) const override;
  [[nodiscard]] bool link_secured(NodeId u, NodeId v) const override;
  [[nodiscard]] double compromised_link_fraction(
      std::span<const NodeId> captured,
      const LinkFilter* filter = nullptr) const override;

  [[nodiscard]] const RandomPredistConfig& config() const noexcept {
    return config_;
  }

  /// Shared pool-key indices between two rings (sorted).
  [[nodiscard]] std::vector<std::uint32_t> shared_keys(NodeId u,
                                                       NodeId v) const;

  /// Analytic probability that two rings share at least one key:
  /// 1 - C(P-m, m)/C(P, m) — for validation against the simulation.
  [[nodiscard]] double analytic_share_probability() const;

 private:
  RandomPredistConfig config_;
  std::vector<std::vector<std::uint32_t>> rings_;  // sorted per node
};

}  // namespace ldke::baselines
