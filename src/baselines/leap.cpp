#include "baselines/leap.hpp"

#include "crypto/prf.hpp"

namespace ldke::baselines {

void LeapScheme::setup(const net::Topology& topo, support::Xoshiro256& rng) {
  remember_topology(topo);
  for (auto& b : master_key_.bytes) b = static_cast<std::uint8_t>(rng.next());
  pairwise_partners_.assign(topo.size(), {});
  degree_.resize(topo.size());
  for (NodeId u = 0; u < topo.size(); ++u) {
    degree_[u] = topo.neighbors(u).size();
    for (NodeId v : topo.neighbors(u)) pairwise_partners_[u].insert(v);
  }
}

crypto::Key128 LeapScheme::pairwise_key(NodeId u, NodeId v) const {
  // K_v = F(Km, v); K_uv = F(K_v, u).
  const crypto::Key128 kv = crypto::prf_u64(master_key_, v);
  return crypto::prf_u64(kv, u);
}

std::size_t LeapScheme::keys_stored(NodeId id) const {
  // Individual key + pairwise keys + own cluster key + neighbors'
  // cluster keys: "a number of pairwise and cluster keys proportional to
  // its actual neighbors" (§III).
  return 1 + pairwise_partners_[id].size() + 1 + degree_[id];
}

std::uint64_t LeapScheme::setup_transmissions() const {
  // Per node: 1 HELLO, 1 ack per neighbor (pairwise establishment), and
  // one cluster-key delivery per neighbor — the "more expensive
  // bootstrapping phase" of §III.
  std::uint64_t total = 0;
  for (std::size_t deg : degree_) total += 1 + 2 * deg;
  return total;
}

double LeapScheme::compromised_link_fraction(
    std::span<const NodeId> captured, const LinkFilter* filter) const {
  // Pairwise keys are localized; capture leaks only the victim's own
  // links (plus cluster keys of adjacent clusters, which are links *to*
  // captured-adjacent nodes, not between two uncaptured ones).
  (void)captured;
  (void)filter;
  return 0.0;
}

void LeapScheme::inject_hello_flood(NodeId victim, std::size_t spoofed_count) {
  const std::size_t n = topology()->size();
  auto& partners = pairwise_partners_[victim];
  std::size_t added = 0;
  for (NodeId id = 0; id < n && added < spoofed_count; ++id) {
    if (id == victim) continue;
    if (partners.insert(id).second) ++added;
  }
}

std::size_t LeapScheme::pairwise_keys_exposed_by_capture(
    NodeId victim) const {
  return pairwise_partners_[victim].size();
}

}  // namespace ldke::baselines
