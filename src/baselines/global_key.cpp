#include "baselines/global_key.hpp"

namespace ldke::baselines {

void GlobalKeyScheme::setup(const net::Topology& topo,
                            support::Xoshiro256& rng) {
  remember_topology(topo);
  for (auto& b : key_.bytes) b = static_cast<std::uint8_t>(rng.next());
}

}  // namespace ldke::baselines
