#include "baselines/ldke_adapter.hpp"

#include <unordered_set>

namespace ldke::baselines {

LdkeAdapter::LdkeAdapter(const core::ProtocolRunner& runner) {
  remember_topology(runner.network().topology());
  const auto& nodes = runner.nodes();
  own_cid_.resize(nodes.size(), core::kNoCluster);
  held_cids_.resize(nodes.size());
  key_counts_.resize(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& keys = nodes[i]->keys();
    own_cid_[i] = keys.own_cid();
    key_counts_[i] = keys.size();
    held_cids_[i].reserve(keys.all().size());
    for (const auto& [cid, key] : keys.all()) held_cids_[i].push_back(cid);
    setup_tx_ += nodes[i]->setup_messages_sent();
  }
}

double LdkeAdapter::compromised_link_fraction(
    std::span<const NodeId> captured, const LinkFilter* filter) const {
  // Capturing a node reveals its whole set S: its own cluster key and
  // the keys of bordering clusters (§VI).  A link (u, v) between
  // uncaptured nodes is readable iff the cluster key either endpoint
  // wraps traffic with — its own cluster's — has been revealed.
  std::unordered_set<core::ClusterId> revealed;
  std::unordered_set<NodeId> captured_set(captured.begin(), captured.end());
  for (NodeId id : captured) {
    revealed.insert(held_cids_[id].begin(), held_cids_[id].end());
  }
  const net::Topology& topo = *topology();
  std::size_t total = 0;
  std::size_t compromised = 0;
  for (NodeId u = 0; u < topo.size(); ++u) {
    if (captured_set.contains(u)) continue;
    for (NodeId v : topo.neighbors(u)) {
      if (u >= v || captured_set.contains(v)) continue;
      if (filter != nullptr && !(*filter)(u, v)) continue;
      ++total;
      if (revealed.contains(own_cid_[u]) || revealed.contains(own_cid_[v])) {
        ++compromised;
      }
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(compromised) /
                          static_cast<double>(total);
}

}  // namespace ldke::baselines
