#include "baselines/random_predist.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ldke::baselines {

void RandomPredistScheme::setup(const net::Topology& topo,
                                support::Xoshiro256& rng) {
  remember_topology(topo);
  rings_.assign(topo.size(), {});
  for (auto& ring : rings_) {
    // Floyd's algorithm: m distinct draws from [0, P).
    std::unordered_set<std::uint32_t> chosen;
    for (std::uint32_t j = config_.pool_size - config_.ring_size;
         j < config_.pool_size; ++j) {
      const auto t = static_cast<std::uint32_t>(rng.uniform_u64(j + 1));
      chosen.insert(chosen.contains(t) ? j : t);
    }
    ring.assign(chosen.begin(), chosen.end());
    std::sort(ring.begin(), ring.end());
  }
}

std::vector<std::uint32_t> RandomPredistScheme::shared_keys(NodeId u,
                                                            NodeId v) const {
  std::vector<std::uint32_t> out;
  std::set_intersection(rings_[u].begin(), rings_[u].end(), rings_[v].begin(),
                        rings_[v].end(), std::back_inserter(out));
  return out;
}

bool RandomPredistScheme::link_secured(NodeId u, NodeId v) const {
  return shared_keys(u, v).size() >= config_.q;
}

std::uint64_t RandomPredistScheme::setup_transmissions() const {
  // Shared-key discovery: each node broadcasts its key identifiers once.
  return topology()->size();
}

std::size_t RandomPredistScheme::broadcast_transmissions(NodeId id) const {
  // No key is shared by the whole neighborhood in general, so a
  // broadcast costs one encrypted transmission per secured neighbor.
  std::size_t secured = 0;
  for (NodeId v : topology()->neighbors(id)) {
    if (link_secured(id, v)) ++secured;
  }
  return std::max<std::size_t>(1, secured);
}

double RandomPredistScheme::compromised_link_fraction(
    std::span<const NodeId> captured, const LinkFilter* filter) const {
  std::unordered_set<std::uint32_t> revealed;
  std::unordered_set<NodeId> captured_set(captured.begin(), captured.end());
  for (NodeId id : captured) {
    revealed.insert(rings_[id].begin(), rings_[id].end());
  }
  std::size_t secured = 0;
  std::size_t compromised = 0;
  const net::Topology& topo = *topology();
  for (NodeId u = 0; u < topo.size(); ++u) {
    if (captured_set.contains(u)) continue;
    for (NodeId v : topo.neighbors(u)) {
      if (u >= v || captured_set.contains(v)) continue;
      if (filter != nullptr && !(*filter)(u, v)) continue;
      const auto shared = shared_keys(u, v);
      if (shared.size() < config_.q) continue;
      ++secured;
      // EG: the link key is one shared key (the lowest-index one by
      // convention).  q-composite: hash of *all* shared keys — the
      // adversary needs every one of them.
      bool broken;
      if (config_.q <= 1) {
        broken = revealed.contains(shared.front());
      } else {
        broken = std::all_of(shared.begin(), shared.end(),
                             [&](std::uint32_t k) { return revealed.contains(k); });
      }
      if (broken) ++compromised;
    }
  }
  return secured == 0 ? 0.0
                      : static_cast<double>(compromised) /
                            static_cast<double>(secured);
}

double RandomPredistScheme::analytic_share_probability() const {
  // 1 - C(P-m, m) / C(P, m) computed in log space.
  const double pool = config_.pool_size;
  const double ring = config_.ring_size;
  double log_ratio = 0.0;
  for (std::uint32_t i = 0; i < config_.ring_size; ++i) {
    log_ratio += std::log((pool - ring - i) / (pool - i));
  }
  return 1.0 - std::exp(log_ratio);
}

}  // namespace ldke::baselines
