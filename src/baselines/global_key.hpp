#pragma once
/// \file global_key.hpp
/// Pebblenets-style single network-wide key [4] (§III): minimal storage
/// and one-transmission broadcast, but "compromise of even a single node
/// will reveal the universal key".

#include "baselines/scheme.hpp"
#include "crypto/key.hpp"

namespace ldke::baselines {

class GlobalKeyScheme final : public KeyScheme {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "global-key (pebblenets)";
  }

  void setup(const net::Topology& topo, support::Xoshiro256& rng) override;

  [[nodiscard]] std::size_t keys_stored(NodeId) const override { return 1; }
  [[nodiscard]] std::uint64_t setup_transmissions() const override {
    return 0;  // the key is pre-loaded; no bootstrap traffic at all
  }
  [[nodiscard]] std::size_t broadcast_transmissions(NodeId) const override {
    return 1;
  }
  [[nodiscard]] bool link_secured(NodeId, NodeId) const override {
    return true;
  }
  [[nodiscard]] double compromised_link_fraction(
      std::span<const NodeId> captured,
      const LinkFilter* /*filter*/ = nullptr) const override {
    // One capture reveals the universal key: everything is readable.
    return captured.empty() ? 0.0 : 1.0;
  }

  [[nodiscard]] const crypto::Key128& network_key() const noexcept {
    return key_;
  }

 private:
  crypto::Key128 key_;
};

}  // namespace ldke::baselines
