#include "baselines/scheme.hpp"

namespace ldke::baselines {

std::vector<Edge> undirected_edges(const net::Topology& topo) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < topo.size(); ++u) {
    for (NodeId v : topo.neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

double KeyScheme::secure_connectivity() const {
  const net::Topology* topo = topology();
  if (topo == nullptr) return 0.0;
  std::size_t secured = 0;
  std::size_t total = 0;
  for (NodeId u = 0; u < topo->size(); ++u) {
    for (NodeId v : topo->neighbors(u)) {
      if (u >= v) continue;
      ++total;
      if (link_secured(u, v)) ++secured;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(secured) / static_cast<double>(total);
}

}  // namespace ldke::baselines
