#pragma once
/// \file leap.hpp
/// LEAP [11] (§III): every node v derives an individual key Kv = F(Km, v)
/// from the network master key, establishes pairwise keys with discovered
/// neighbors during a bootstrap window, then distributes a per-node
/// cluster key to each neighbor under those pairwise keys.  Km is erased
/// afterwards.
///
/// The paper reports an attack on LEAP: an attacker floods HELLOs with
/// arbitrary ids during neighbor discovery — "nothing prevents her from
/// doing so" — forcing a victim to compute and store pairwise keys with
/// (up to) every node in the network; capturing the victim afterwards
/// hands the adversary keys it can use network-wide.
/// inject_hello_flood() reproduces exactly that.

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baselines/scheme.hpp"
#include "crypto/key.hpp"

namespace ldke::baselines {

class LeapScheme final : public KeyScheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "LEAP"; }

  void setup(const net::Topology& topo, support::Xoshiro256& rng) override;

  [[nodiscard]] std::size_t keys_stored(NodeId id) const override;
  [[nodiscard]] std::uint64_t setup_transmissions() const override;
  [[nodiscard]] std::size_t broadcast_transmissions(NodeId) const override {
    // LEAP also achieves single-transmission broadcast via cluster keys.
    return 1;
  }
  [[nodiscard]] bool link_secured(NodeId, NodeId) const override {
    return true;
  }
  [[nodiscard]] double compromised_link_fraction(
      std::span<const NodeId> captured,
      const LinkFilter* filter = nullptr) const override;

  // ---- the paper's HELLO-flood attack ----

  /// During the discovery window, the attacker spoofs HELLOs carrying
  /// \p spoofed_count distinct node ids to \p victim, which dutifully
  /// computes and stores a pairwise key for each (the protocol gives it
  /// no way to refuse).
  void inject_hello_flood(NodeId victim, std::size_t spoofed_count);

  /// After capturing \p victim: the number of nodes in the whole network
  /// the adversary now shares a pairwise key with (i.e., can impersonate
  /// the victim to / decrypt unicasts of).  Without the flood this is
  /// just the victim's physical neighborhood.
  [[nodiscard]] std::size_t pairwise_keys_exposed_by_capture(
      NodeId victim) const;

  /// The pairwise key K_uv = F(K_v, u) that LEAP's derivation yields
  /// (real key bytes — used by tests to check derivation consistency).
  [[nodiscard]] crypto::Key128 pairwise_key(NodeId u, NodeId v) const;

 private:
  crypto::Key128 master_key_;
  // pairwise_partners_[u] = ids u holds a pairwise key for.
  std::vector<std::unordered_set<NodeId>> pairwise_partners_;
  std::vector<std::size_t> degree_;
};

}  // namespace ldke::baselines
