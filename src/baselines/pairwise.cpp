#include "baselines/pairwise.hpp"

namespace ldke::baselines {

void PairwiseScheme::setup(const net::Topology& topo,
                           support::Xoshiro256& /*rng*/) {
  remember_topology(topo);
  degree_.resize(topo.size());
  for (NodeId id = 0; id < topo.size(); ++id) {
    degree_[id] = topo.neighbors(id).size();
  }
}

std::size_t PairwiseScheme::keys_stored(NodeId id) const {
  if (preloaded_all_pairs_) return topology()->size() - 1;
  return degree_[id];
}

std::uint64_t PairwiseScheme::setup_transmissions() const {
  if (preloaded_all_pairs_) return 0;  // all keys manufactured in
  // Neighbor-pairs variant: a key agreement handshake (2 messages) per
  // undirected link.
  std::uint64_t links = 0;
  for (std::size_t deg : degree_) links += deg;
  return links;  // 2 * (links/2)
}

std::size_t PairwiseScheme::broadcast_transmissions(NodeId id) const {
  // One transmission per neighbor, each under a different pairwise key —
  // the cost the paper's broadcast argument targets (§II).
  return degree_[id] == 0 ? 1 : degree_[id];
}

double PairwiseScheme::compromised_link_fraction(
    std::span<const NodeId> captured, const LinkFilter* filter) const {
  // Pairwise keys are perfectly localized: links between uncaptured
  // nodes never leak.
  (void)captured;
  (void)filter;
  return 0.0;
}

}  // namespace ldke::baselines
