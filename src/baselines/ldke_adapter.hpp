#pragma once
/// \file ldke_adapter.hpp
/// Presents a completed LDKE deployment (after run_key_setup()) through
/// the KeyScheme interface so resilience / storage / broadcast benches
/// compare it against the §III baselines on identical footing.

#include <vector>

#include "baselines/scheme.hpp"
#include "core/runner.hpp"

namespace ldke::baselines {

class LdkeAdapter final : public KeyScheme {
 public:
  /// \p runner must have finished run_key_setup(); the adapter reads the
  /// realized clusters and key sets (it does not copy key bytes).
  explicit LdkeAdapter(const core::ProtocolRunner& runner);

  [[nodiscard]] std::string_view name() const override { return "LDKE (this paper)"; }

  /// No-op: state comes from the protocol run handed to the constructor.
  void setup(const net::Topology&, support::Xoshiro256&) override {}

  [[nodiscard]] std::size_t keys_stored(NodeId id) const override {
    return key_counts_[id];
  }
  [[nodiscard]] std::uint64_t setup_transmissions() const override {
    return setup_tx_;
  }
  [[nodiscard]] std::size_t broadcast_transmissions(NodeId) const override {
    return 1;  // the cluster key covers the whole neighborhood (§II)
  }
  [[nodiscard]] bool link_secured(NodeId, NodeId) const override {
    return true;  // deterministic establishment
  }
  [[nodiscard]] double compromised_link_fraction(
      std::span<const NodeId> captured,
      const LinkFilter* filter = nullptr) const override;

 private:
  std::vector<core::ClusterId> own_cid_;               // per node
  std::vector<std::vector<core::ClusterId>> held_cids_;  // per node: set S
  std::vector<std::size_t> key_counts_;
  std::uint64_t setup_tx_ = 0;
};

}  // namespace ldke::baselines
