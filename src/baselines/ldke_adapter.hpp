#pragma once
/// \file ldke_adapter.hpp
/// Presents a completed LDKE deployment (after run_key_setup()) through
/// the KeyScheme interface so resilience / storage / broadcast benches
/// compare it against the §III baselines on identical footing.

#include <vector>

#include "baselines/scheme.hpp"
#include "core/runner.hpp"

namespace ldke::baselines {

class LdkeAdapter final : public KeyScheme {
 public:
  /// \p runner must have finished run_key_setup(); the adapter reads the
  /// realized clusters and key sets (it does not copy key bytes).
  explicit LdkeAdapter(const core::ProtocolRunner& runner);

  [[nodiscard]] std::string_view name() const override { return "LDKE (this paper)"; }

  /// No-op: state comes from the protocol run handed to the constructor.
  void setup(const net::Topology&, support::Xoshiro256&) override {}

  [[nodiscard]] std::size_t keys_stored(NodeId id) const override {
    return key_counts_[id];
  }
  [[nodiscard]] std::uint64_t setup_transmissions() const override {
    return setup_tx_;
  }
  [[nodiscard]] std::size_t broadcast_transmissions(NodeId) const override {
    return 1;  // the cluster key covers the whole neighborhood (§II)
  }
  /// Secured iff either endpoint can read the other's cluster traffic:
  /// u holds v's own cluster key or vice versa.  On the static
  /// deployment the adapter snapshots, establishment is deterministic
  /// and every radio link qualifies; once nodes *move* (the scenario
  /// replay), links between strangers — neither inside the other's
  /// key neighborhood — come up unsecured, which is LDKE's honest
  /// location-bound degradation mode.
  [[nodiscard]] bool link_secured(NodeId u, NodeId v) const override {
    if (u >= own_cid_.size() || v >= own_cid_.size()) return false;
    return holds(u, own_cid_[v]) || holds(v, own_cid_[u]);
  }
  [[nodiscard]] double compromised_link_fraction(
      std::span<const NodeId> captured,
      const LinkFilter* filter = nullptr) const override;

 private:
  [[nodiscard]] bool holds(NodeId id, core::ClusterId cid) const {
    if (cid == core::kNoCluster) return false;
    const auto& held = held_cids_[id];
    for (const core::ClusterId c : held) {
      if (c == cid) return true;
    }
    return false;
  }

  std::vector<core::ClusterId> own_cid_;               // per node
  std::vector<std::vector<core::ClusterId>> held_cids_;  // per node: set S
  std::vector<std::size_t> key_counts_;
  std::uint64_t setup_tx_ = 0;
};

}  // namespace ldke::baselines
