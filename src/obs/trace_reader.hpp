#pragma once
/// \file trace_reader.hpp
/// Offline side of the trace schema: loads a JSONL stream written by
/// TraceSink and derives the reports the ldke_trace CLI prints — phase
/// timelines with per-window traffic, per-kind tables, top talkers and
/// end-to-end latency percentiles.  Pure string/number domain (packet
/// kinds are the names the sink wrote), so it needs nothing above
/// support/ and is equally usable from tests.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/audit.hpp"
#include "obs/delivery.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"

namespace ldke::obs {

struct TracePacket {
  std::int64_t t_ns = 0;
  std::uint32_t sender = 0;
  std::string kind;
  std::uint32_t bytes = 0;
};

/// One v2 "audit" record.  The kind stays a string so a v2 reader also
/// carries through kinds minted by future writers.
struct TraceAudit {
  std::int64_t t_ns = 0;
  std::string kind;
  std::uint32_t actor = 0;
  std::uint32_t subject = kAuditNoSubject;
  std::uint64_t arg = 0;
};

struct TraceData {
  int version = 0;
  JsonValue meta;  ///< the full meta record (tool, nodes, density, ...)
  std::vector<TraceSpan> spans;
  std::vector<TracePacket> packets;
  std::vector<TraceAudit> audits;    ///< v2; empty on v1 traces
  std::vector<HealthSample> health;  ///< v2; empty on v1 traces
  std::vector<DeliveryTracker::Sample> deliveries;
  JsonValue counters;  ///< last counters snapshot (null if none)
  std::uint64_t trace_dropped = 0;   ///< records evicted by the recorder
  std::uint64_t trace_filtered = 0;  ///< records excluded by kind filter
  std::uint64_t skipped_lines = 0;   ///< unparseable or unknown-type lines

  [[nodiscard]] std::int64_t node_count() const noexcept {
    return meta.int_at("nodes");
  }
};

/// Loads a whole JSONL stream.  Returns nullopt only when the stream has
/// no valid meta record or a newer major schema version; individually
/// malformed lines are counted in skipped_lines instead.
[[nodiscard]] std::optional<TraceData> load_trace(std::istream& in);

// ---- derived reports ------------------------------------------------------

struct PhaseRow {
  std::string name;
  std::uint32_t depth = 0;
  double start_s = 0.0;
  double end_s = 0.0;       ///< < 0 when the span never closed
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

struct KindRow {
  std::string kind;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

struct TalkerRow {
  std::uint32_t sender = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

struct LatencyReport {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Packet rate over one named span window.
struct RateReport {
  std::string window;       ///< span name the rate was computed over
  double window_s = 0.0;    ///< window duration
  std::uint64_t packets = 0;
  double pkts_per_s = 0.0;
};

/// Packets/bytes per span window (a packet counts toward every span whose
/// window contains it — parents therefore include their children).
[[nodiscard]] std::vector<PhaseRow> phase_rows(const TraceData& data);

/// Whole-run traffic per packet kind, sorted by bytes descending.
[[nodiscard]] std::vector<KindRow> kind_rows(const TraceData& data);

/// Traffic per kind within one named phase window (first span with that
/// name); empty when the phase is absent.
[[nodiscard]] std::vector<KindRow> kind_rows_in_phase(const TraceData& data,
                                                      std::string_view phase);

/// Top \p n senders by bytes.
[[nodiscard]] std::vector<TalkerRow> top_talkers(const TraceData& data,
                                                 std::size_t n);

[[nodiscard]] LatencyReport latency_report(const TraceData& data);

/// Latency percentiles restricted to deliveries received inside the
/// first span named \p phase (count == 0 when absent or empty) — the
/// steady-state DATA view when \p phase is "steady_state".
[[nodiscard]] LatencyReport latency_report_in_phase(const TraceData& data,
                                                    std::string_view phase);

/// Sustained packets/sec over the steady-state window: the first closed
/// "steady_state" span, falling back to "run".  nullopt when neither
/// exists or the window is empty.
[[nodiscard]] std::optional<RateReport> steady_rate(const TraceData& data);

/// Setup messages per node, the paper's Fig 9 quantity, recomputed from
/// the trace alone: (hello + link_advert packets) / nodes.  0 when the
/// meta record carries no node count.
[[nodiscard]] double setup_messages_per_node(const TraceData& data);

/// Per-kind audit census: count plus first/last occurrence, in first-seen
/// order (which is chronological, since the writer emits a sorted stream).
struct AuditKindRow {
  std::string kind;
  std::uint64_t count = 0;
  double first_s = 0.0;
  double last_s = 0.0;
};
[[nodiscard]] std::vector<AuditKindRow> audit_kind_rows(const TraceData& data);

/// One eviction's re-key convergence: sim time the base station issued
/// the revocation, the victim cluster, and the delay until the next
/// refresh epoch landed on any surviving node (converged == false when
/// the trace ends first).
struct ConvergenceRow {
  double evict_s = 0.0;
  std::uint32_t victim_cid = kAuditNoSubject;
  double converge_ms = 0.0;
  bool converged = false;
};
[[nodiscard]] std::vector<ConvergenceRow> eviction_convergence(
    const TraceData& data);

// ---- rendered reports (terminal tables) -----------------------------------

[[nodiscard]] std::string render_phases(const TraceData& data);
[[nodiscard]] std::string render_traffic(const TraceData& data);
[[nodiscard]] std::string render_talkers(const TraceData& data,
                                         std::size_t n = 10);
[[nodiscard]] std::string render_latency(const TraceData& data);
[[nodiscard]] std::string render_audit(const TraceData& data);
[[nodiscard]] std::string render_health(const TraceData& data);
[[nodiscard]] std::string render_summary(const TraceData& data);

}  // namespace ldke::obs
