#include "obs/health_accum.hpp"

#include <algorithm>
#include <cassert>

namespace ldke::obs {

namespace {

bool sorted_contains(const std::vector<std::uint32_t>& v, std::uint32_t x) {
  return std::binary_search(v.begin(), v.end(), x);
}

void sorted_insert(std::vector<std::uint32_t>& v, std::uint32_t x) {
  v.insert(std::upper_bound(v.begin(), v.end(), x), x);
}

void sorted_erase(std::vector<std::uint32_t>& v, std::uint32_t x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) v.erase(it);
}

bool sorted_intersect(const std::vector<std::uint32_t>& a,
                      const std::vector<std::uint32_t>& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

void HealthAccumulator::begin_resync(std::size_t node_count) {
  active_.assign(node_count, 0);
  keyed_.assign(node_count, 0);
  epoch_.assign(node_count, 0);
  cids_.assign(node_count, {});
  sec_.assign(node_count, {});
  live_links_ = 0;
  secured_links_ = 0;
  parent_.resize(node_count);
  uf_dirty_ = false;
}

void HealthAccumulator::resync_node(std::uint32_t id, bool active, bool keyed,
                                    std::uint64_t epoch,
                                    std::span<const std::uint32_t> cids) {
  active_[id] = active ? 1 : 0;
  keyed_[id] = keyed ? 1 : 0;
  epoch_[id] = epoch;
  cids_[id].assign(cids.begin(), cids.end());
  assert(std::is_sorted(cids_[id].begin(), cids_[id].end()));
}

void HealthAccumulator::end_resync() {
  const auto n = static_cast<std::uint32_t>(active_.size());
  for (std::uint32_t u = 0; u < n; ++u) parent_[u] = u;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (active_[u] == 0) continue;
    for (const std::uint32_t v : graph_.neighbors_of(u)) {
      if (v <= u || active_[v] == 0) continue;
      ++live_links_;
      if (pair_secured(u, v)) {
        sec_[u].push_back(v);  // ascending scan keeps both sorted
        sec_[v].push_back(u);
        ++secured_links_;
        unite(u, v);
      }
    }
  }
  for (auto& s : sec_) {
    std::sort(s.begin(), s.end());
  }
  uf_dirty_ = false;
}

bool HealthAccumulator::pair_secured(std::uint32_t u, std::uint32_t v) const {
  return active_[u] != 0 && active_[v] != 0 && epoch_[u] == epoch_[v] &&
         sorted_intersect(cids_[u], cids_[v]);
}

std::uint32_t HealthAccumulator::find(std::uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

void HealthAccumulator::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a != b) parent_[std::max(a, b)] = std::min(a, b);
}

void HealthAccumulator::rebuild_union_find() {
  const auto n = static_cast<std::uint32_t>(active_.size());
  for (std::uint32_t u = 0; u < n; ++u) parent_[u] = u;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const std::uint32_t v : sec_[u]) {
      if (v > u) unite(u, v);
    }
  }
  uf_dirty_ = false;
}

void HealthAccumulator::rekey(std::uint32_t u) {
  scratch_sec_.clear();
  if (active_[u] != 0) {
    for (const std::uint32_t v : graph_.neighbors_of(u)) {
      if (v != u && pair_secured(u, v)) scratch_sec_.push_back(v);
    }
  }
  // Delta against the stored set (both sorted): touch only flips.
  std::size_t i = 0;
  std::size_t j = 0;
  const auto& old = sec_[u];
  while (i < old.size() || j < scratch_sec_.size()) {
    if (j == scratch_sec_.size() ||
        (i < old.size() && old[i] < scratch_sec_[j])) {
      const std::uint32_t v = old[i++];
      sorted_erase(sec_[v], u);
      --secured_links_;
      uf_dirty_ = true;
    } else if (i == old.size() || scratch_sec_[j] < old[i]) {
      const std::uint32_t v = scratch_sec_[j++];
      sorted_insert(sec_[v], u);
      ++secured_links_;
      if (!uf_dirty_) unite(u, v);
    } else {
      ++i;
      ++j;
    }
  }
  sec_[u] = scratch_sec_;
}

void HealthAccumulator::set_active(std::uint32_t u, bool active) {
  if ((active_[u] != 0) == active) return;
  if (!active) {
    for (const std::uint32_t v : graph_.neighbors_of(u)) {
      if (v != u && active_[v] != 0) --live_links_;
    }
    active_[u] = 0;
    rekey(u);  // empties u's secured set
  } else {
    active_[u] = 1;
    for (const std::uint32_t v : graph_.neighbors_of(u)) {
      if (v != u && active_[v] != 0) ++live_links_;
    }
    rekey(u);
  }
}

void HealthAccumulator::add_cid(std::uint32_t u, std::uint32_t cid) {
  if (!sorted_contains(cids_[u], cid)) sorted_insert(cids_[u], cid);
}

void HealthAccumulator::remove_cid(std::uint32_t u, std::uint32_t cid) {
  sorted_erase(cids_[u], cid);
}

void HealthAccumulator::ensure(std::uint32_t id) {
  if (id < active_.size()) return;
  const std::size_t n = id + 1;
  active_.resize(n, 0);
  keyed_.resize(n, 0);
  epoch_.resize(n, 0);
  cids_.resize(n);
  sec_.resize(n);
  parent_.reserve(n);
  while (parent_.size() < n) {
    parent_.push_back(static_cast<std::uint32_t>(parent_.size()));
  }
}

void HealthAccumulator::on_node_added(std::uint32_t id) {
  ensure(id);
  // Fresh §IV-E deployments come up active and unkeyed; count the live
  // links its topology edges just created.
  active_[id] = 0;  // set_active does the link accounting
  set_active(id, true);
}

void HealthAccumulator::on_edge(std::uint32_t a, std::uint32_t b, bool added) {
  ensure(std::max(a, b));
  if (active_[a] == 0 || active_[b] == 0) {
    // An edge touching an inactive endpoint carries no live or secured
    // accounting; when the endpoint reactivates, set_active rescans.
    return;
  }
  if (added) {
    ++live_links_;
    if (pair_secured(a, b)) {
      sorted_insert(sec_[a], b);
      sorted_insert(sec_[b], a);
      ++secured_links_;
      if (!uf_dirty_) unite(a, b);
    }
  } else {
    --live_links_;
    if (sorted_contains(sec_[a], b)) {
      sorted_erase(sec_[a], b);
      sorted_erase(sec_[b], a);
      --secured_links_;
      uf_dirty_ = true;
    }
  }
}

void HealthAccumulator::on_audit(const AuditEvent& event) {
  ensure(event.actor);
  switch (event.kind) {
    case AuditKind::kKeyEstablished:
    case AuditKind::kMemberJoined:
      keyed_[event.actor] = 1;
      add_cid(event.actor, event.subject);
      rekey(event.actor);
      break;
    case AuditKind::kNeighborKeyStored:
      add_cid(event.actor, event.subject);
      rekey(event.actor);
      break;
    case AuditKind::kNeighborKeyDropped:
      remove_cid(event.actor, event.subject);
      rekey(event.actor);
      break;
    case AuditKind::kJoinAdmitted:
      keyed_[event.actor] = 1;
      epoch_[event.actor] = event.arg;
      add_cid(event.actor, event.subject);
      rekey(event.actor);
      break;
    case AuditKind::kEvicted:
      keyed_[event.actor] = 0;
      cids_[event.actor].clear();
      rekey(event.actor);
      break;
    case AuditKind::kRefreshApplied:
      epoch_[event.actor] = event.arg;
      rekey(event.actor);
      break;
    case AuditKind::kNodeLeft:
    case AuditKind::kNodeFailed:
      set_active(event.actor, false);
      break;
    case AuditKind::kSleep:
      set_active(event.actor, false);
      break;
    case AuditKind::kWake:
      epoch_[event.actor] += event.arg;
      set_active(event.actor, true);
      break;
    case AuditKind::kRefreshRound:
    case AuditKind::kRefreshReplay:
    case AuditKind::kEvictionIssued:
    case AuditKind::kJoinStarted:
    case AuditKind::kJoinRejected:
    case AuditKind::kPartition:
    case AuditKind::kHeal:
    case AuditKind::kReplayRejected:
    case AuditKind::kNonceWrapAbort:
      break;  // no key-graph state change
  }
}

HealthSample HealthAccumulator::sample() {
  if (uf_dirty_) rebuild_union_find();
  HealthSample s;
  const auto n = static_cast<std::uint32_t>(active_.size());
  std::uint64_t epoch_min = 0;
  std::uint64_t epoch_max = 0;
  std::uint64_t epoch_sum = 0;
  std::uint32_t keyed = 0;
  root_sizes_.assign(n, 0);
  std::uint32_t components = 0;
  std::uint32_t largest = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (active_[u] == 0) continue;
    ++s.active_nodes;
    if (keyed_[u] != 0) {
      const std::uint64_t epoch = epoch_[u];
      if (keyed == 0) {
        epoch_min = epoch_max = epoch;
      }
      epoch_min = std::min(epoch_min, epoch);
      epoch_max = std::max(epoch_max, epoch);
      epoch_sum += epoch;
      ++keyed;
    }
    const std::uint32_t r = find(u);
    if (root_sizes_[r]++ == 0) ++components;
    largest = std::max(largest, root_sizes_[r]);
  }
  s.live_links = static_cast<std::uint32_t>(live_links_);
  s.secured_links = static_cast<std::uint32_t>(secured_links_);
  s.secured_link_fraction =
      live_links_ == 0
          ? 0.0
          : static_cast<double>(secured_links_) /
                static_cast<double>(live_links_);
  s.key_components = components;
  s.largest_component = largest;
  s.epoch_skew = keyed == 0 ? 0 : epoch_max - epoch_min;
  s.epoch_mean = keyed == 0 ? 0.0 : static_cast<double>(epoch_sum) / keyed;
  return s;
}

}  // namespace ldke::obs
