#pragma once
/// \file trace_sink.hpp
/// Versioned JSONL trace writer.  One JSON object per line; the first
/// line is a "meta" record carrying the schema version, run parameters
/// and tool name.  Everything ldke_trace consumes is written through
/// this sink, so the schema lives in exactly one place:
///
///   {"type":"meta","v":2,"tool":...,"nodes":N,"density":D,"seed":S,...}
///   {"type":"span","name":"key_setup","t0":0,"t1":6050000000,"depth":0}
///   {"type":"pkt","t":12345,"sender":7,"kind":"hello","bytes":91}
///   {"type":"audit","t":...,"kind":"refresh_applied","actor":7,
///    "subject":2,"arg":3}                      (v2; "subject" optional)
///   {"type":"delivery","src":42,"t_tx":...,"t_rx":...}
///   {"type":"health","t":...,"phase":"stress","active":N,...}    (v2)
///   {"type":"counters","snapshot":{"counters":{...},"gauges":{...},...}}
///   {"type":"trace_drops","seen":N,"recorded":M,"dropped":K,"filtered":F}
///
/// All timestamps are simulated nanoseconds.  Unknown line types must be
/// skipped by readers (forward compatibility within a major version):
/// v2 only *adds* the audit/health families, so every v1 trace is a
/// valid v2 trace and v2 readers parse v1 files unchanged.

#include <cstdint>
#include <ostream>
#include <string_view>

#include "obs/audit.hpp"
#include "obs/delivery.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"

namespace ldke::obs {

/// Bumped when a reader of version N can no longer parse the stream.
/// v2: added the "audit" and "health" record families (additive).
inline constexpr int kTraceSchemaVersion = 2;

class TraceSink {
 public:
  explicit TraceSink(std::ostream& os) : os_(os) {}

  /// Writes the leading meta record; \p fields are merged after the
  /// mandatory type/v/tool members.
  void write_meta(std::string_view tool, JsonValue fields);

  void write_span(const TraceSpan& span);
  void write_packet(std::int64_t t_ns, std::uint32_t sender,
                    std::string_view kind, std::uint32_t bytes);
  void write_audit(const AuditEvent& event);
  void write_delivery(const DeliveryTracker::Sample& sample);
  void write_health(const HealthSample& sample);
  void write_counters(JsonValue snapshot);
  void write_trace_drops(std::uint64_t seen, std::uint64_t recorded,
                         std::uint64_t dropped, std::uint64_t filtered);

  /// Escape hatch for new record types: {"type":<type>, ...fields}.
  void write_record(std::string_view type, JsonValue fields);

  [[nodiscard]] std::uint64_t lines_written() const noexcept {
    return lines_;
  }

 private:
  void emit(const JsonValue& line);

  std::ostream& os_;
  std::uint64_t lines_ = 0;
};

}  // namespace ldke::obs
