#include "obs/audit.hpp"

#include <algorithm>

namespace ldke::obs {

namespace {

constexpr std::array<std::string_view, kAuditKindCount> kKindNames = {
    "key_established", "member_joined",  "refresh_round",  "refresh_applied",
    "refresh_replay",  "eviction_issued", "evicted",        "join_started",
    "join_admitted",   "join_rejected",  "node_left",      "node_failed",
    "sleep",           "wake",           "partition",      "heal",
    "replay_rejected", "nonce_wrap_abort",
    "neighbor_key_stored", "neighbor_key_dropped",
};

}  // namespace

std::string_view audit_kind_name(AuditKind kind) noexcept {
  const auto index = static_cast<std::size_t>(kind);
  if (index >= kKindNames.size()) return "unknown";
  return kKindNames[index];
}

std::optional<AuditKind> audit_kind_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (kKindNames[i] == name) return static_cast<AuditKind>(i);
  }
  return std::nullopt;
}

AuditSink::AuditSink(std::size_t capacity_per_lane)
    : capacity_per_lane_(capacity_per_lane == 0 ? 1 : capacity_per_lane),
      shards_(1) {}

void AuditSink::enable_lanes(std::size_t lanes) {
  shards_.resize(lanes == 0 ? 1 : lanes);
}

void AuditSink::record(std::size_t lane, const AuditEvent& event) {
  Shard& shard = shards_[lane < shards_.size() ? lane : 0];
  ++shard.seen;
  if (shard.events.size() >= capacity_per_lane_) {
    const std::size_t evict = capacity_per_lane_ / 4 + 1;
    const std::size_t n = std::min(evict, shard.events.size());
    shard.events.erase(shard.events.begin(),
                       shard.events.begin() + static_cast<std::ptrdiff_t>(n));
    shard.dropped += n;
  }
  shard.events.push_back(event);
}

std::vector<AuditEvent> AuditSink::merged() const {
  std::vector<AuditEvent> out;
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.events.size();
  out.reserve(total);
  for (const Shard& shard : shards_) {
    out.insert(out.end(), shard.events.begin(), shard.events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const AuditEvent& a, const AuditEvent& b) {
                     if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
                     return a.actor < b.actor;
                   });
  return out;
}

std::array<std::uint64_t, kAuditKindCount> AuditSink::counts_by_kind() const {
  std::array<std::uint64_t, kAuditKindCount> counts{};
  for (const Shard& shard : shards_) {
    for (const AuditEvent& event : shard.events) {
      ++counts[static_cast<std::size_t>(event.kind)];
    }
  }
  return counts;
}

std::uint64_t AuditSink::total_seen() const noexcept {
  std::uint64_t n = 0;
  for (const Shard& shard : shards_) n += shard.seen;
  return n;
}

std::uint64_t AuditSink::total_recorded() const noexcept {
  std::uint64_t n = 0;
  for (const Shard& shard : shards_) n += shard.events.size();
  return n;
}

std::uint64_t AuditSink::total_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const Shard& shard : shards_) n += shard.dropped;
  return n;
}

void AuditSink::clear() noexcept {
  for (Shard& shard : shards_) {
    shard.events.clear();
    shard.seen = 0;
    shard.dropped = 0;
  }
}

}  // namespace ldke::obs
