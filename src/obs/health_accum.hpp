#pragma once
/// \file health_accum.hpp
/// Audit-fed incremental protocol-health accounting.
///
/// core::probe_health answers "how healthy is the key graph?" by walking
/// every node and every live link — O(N+E) per sample, which dwarfs the
/// cost of an incremental mobility epoch at 100k nodes.  This
/// accumulator maintains the same gauges continuously from the audit
/// event stream (an AuditListener tap, so nothing is ever evicted) plus
/// the topology's per-epoch edge diffs, making a HealthSample an O(N)
/// worst-case read (the lazy union-find rebuild) and usually far less.
///
/// The mirror holds *no key bytes*: a link counts as secured when both
/// endpoints are active, share a cluster id, and sit at the same hash
/// epoch — exactly the byte-equality predicate of the probe, because a
/// node's stored key for cluster c is always F^epoch(K0_c) under the
/// lockstep §IV-C refresh discipline the scenario engine drives.
/// SensorNode keeps every stored *and* pending-join key on that F-chain
/// (apply_hash_refresh and on_join_reply fast-forward §IV-E candidates
/// to the node's epoch, and a §IV-C recluster round voids in-flight
/// join buffers whose candidates would otherwise commit pre-swap key
/// material), and the one path that leaves it — the random per-cluster
/// rekey of initiate_cluster_rekey — is never driven by the scenario
/// engine; the engine's cross-check mode verifies the equivalence
/// against the probe on every sample.
///
/// Layering: obs cannot see net/core, so topology adjacency comes in
/// through the NeighborSource interface and node key/epoch state is
/// pushed in by the engine's resync walk at setup and recluster
/// boundaries (the only moments key state changes without audit
/// coverage — the recluster commit swaps key sets atomically).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/audit.hpp"

namespace ldke::obs {

class HealthAccumulator : public AuditListener {
 public:
  /// Read-only view of the communication graph (the engine adapts
  /// net::Topology).  Lists must be sorted ascending.
  class NeighborSource {
   public:
    virtual ~NeighborSource() = default;
    [[nodiscard]] virtual std::span<const std::uint32_t> neighbors_of(
        std::uint32_t id) const = 0;
  };

  explicit HealthAccumulator(const NeighborSource& graph) : graph_(graph) {}

  // ---- resync (setup / recluster boundaries) ------------------------
  void begin_resync(std::size_t node_count);
  /// Pushes one node's ground-truth state; \p cids must be sorted.
  void resync_node(std::uint32_t id, bool active, bool keyed,
                   std::uint64_t epoch, std::span<const std::uint32_t> cids);
  /// Recomputes links, secured edges and connectivity from the pushed
  /// state — the one O(N+E) pass, amortized over a whole scenario.
  void end_resync();

  // ---- incremental feeds --------------------------------------------
  void on_audit(const AuditEvent& event) override;
  /// Topology edge flip from Topology::apply_displacements.
  void on_edge(std::uint32_t a, std::uint32_t b, bool added);
  /// A brand-new node entered the topology (§IV-E deploy); it starts
  /// active, unkeyed, at epoch 0.  Call after the topology knows it.
  void on_node_added(std::uint32_t id);

  /// Structural gauges only: active/live/secured/components/epochs.
  /// The caller stamps t_ns/phase and fills the delivery window.
  [[nodiscard]] HealthSample sample();

  [[nodiscard]] std::size_t size() const noexcept { return active_.size(); }

 private:
  [[nodiscard]] bool pair_secured(std::uint32_t u, std::uint32_t v) const;
  /// Re-derives u's secured-neighbor set and applies the delta to both
  /// endpoints, the counts, and the union-find — O(deg(u)) integer ops.
  void rekey(std::uint32_t u);
  void set_active(std::uint32_t u, bool active);
  void add_cid(std::uint32_t u, std::uint32_t cid);
  void remove_cid(std::uint32_t u, std::uint32_t cid);
  void ensure(std::uint32_t id);
  void unite(std::uint32_t a, std::uint32_t b);
  [[nodiscard]] std::uint32_t find(std::uint32_t x);
  void rebuild_union_find();

  const NeighborSource& graph_;
  std::vector<std::uint8_t> active_;
  std::vector<std::uint8_t> keyed_;
  std::vector<std::uint64_t> epoch_;
  std::vector<std::vector<std::uint32_t>> cids_;  // sorted cluster ids
  std::vector<std::vector<std::uint32_t>> sec_;   // sorted secured neighbors
  std::uint64_t live_links_ = 0;
  std::uint64_t secured_links_ = 0;
  // Union-find over secured edges: exact while edges only arrive
  // (incremental unite), rebuilt lazily from sec_ after any removal.
  std::vector<std::uint32_t> parent_;
  bool uf_dirty_ = false;
  std::vector<std::uint32_t> scratch_sec_;
  std::vector<std::uint32_t> root_sizes_;  // sample() scratch
};

}  // namespace ldke::obs
