#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ldke::obs {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_at(std::string_view key,
                            double fallback) const noexcept {
  const JsonValue* v = find(key);
  return v != nullptr ? v->as_double(fallback) : fallback;
}

std::int64_t JsonValue::int_at(std::string_view key,
                               std::int64_t fallback) const noexcept {
  const JsonValue* v = find(key);
  return v != nullptr ? v->as_int(fallback) : fallback;
}

std::string JsonValue::string_at(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::string{fallback};
}

bool JsonValue::bool_at(std::string_view key, bool fallback) const noexcept {
  const JsonValue* v = find(key);
  return v != nullptr ? v->as_bool(fallback) : fallback;
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  arr_.push_back(std::move(value));
  return *this;
}

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      if (is_int_) {
        out += std::to_string(int_);
        return;
      }
      if (!std::isfinite(num_)) {  // JSON has no inf/nan
        out += "null";
        return;
      }
      char buf[32];
      // %.17g round-trips doubles; trim to shortest via %g first.
      std::snprintf(buf, sizeof buf, "%g", num_);
      double back = 0.0;
      std::sscanf(buf, "%lf", &back);
      if (back != num_) std::snprintf(buf, sizeof buf, "%.17g", num_);
      out += buf;
      return;
    }
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      return;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& v : arr_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(k);
        out += "\":";
        v.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  [[nodiscard]] bool eof() const noexcept { return pos >= text.size(); }
  [[nodiscard]] char peek() const noexcept { return text[pos]; }
  bool consume(char c) {
    if (eof() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (!eof()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) return std::nullopt;
        const char esc = text[pos++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // Basic-plane UTF-8 encoding (the schema emits ASCII only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos;
    bool is_int = true;
    while (!eof()) {
      const char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_int = c == '-' || c == '+' ? is_int : false;
        ++pos;
      } else {
        break;
      }
    }
    const std::string_view token = text.substr(start, pos - start);
    if (token.empty()) return std::nullopt;
    if (is_int) {
      std::int64_t i = 0;
      const auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc{} && p == token.data() + token.size()) {
        return JsonValue{i};
      }
    }
    double d = 0.0;
    const auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc{} || p != token.data() + token.size()) {
      return std::nullopt;
    }
    return JsonValue{d};
  }

  std::optional<JsonValue> parse_value(int depth) {
    if (depth > 64) return std::nullopt;
    skip_ws();
    if (eof()) return std::nullopt;
    const char c = peek();
    if (c == '{') {
      ++pos;
      JsonObject obj;
      skip_ws();
      if (consume('}')) return JsonValue{std::move(obj)};
      while (true) {
        skip_ws();
        auto key = parse_string();
        if (!key) return std::nullopt;
        skip_ws();
        if (!consume(':')) return std::nullopt;
        auto value = parse_value(depth + 1);
        if (!value) return std::nullopt;
        obj.emplace_back(std::move(*key), std::move(*value));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) return JsonValue{std::move(obj)};
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos;
      JsonArray arr;
      skip_ws();
      if (consume(']')) return JsonValue{std::move(arr)};
      while (true) {
        auto value = parse_value(depth + 1);
        if (!value) return std::nullopt;
        arr.push_back(std::move(*value));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return JsonValue{std::move(arr)};
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return JsonValue{std::move(*s)};
    }
    if (consume_literal("true")) return JsonValue{true};
    if (consume_literal("false")) return JsonValue{false};
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  Parser parser{text};
  auto value = parser.parse_value(0);
  if (!value) return std::nullopt;
  parser.skip_ws();
  if (!parser.eof()) return std::nullopt;  // trailing garbage
  return value;
}

}  // namespace ldke::obs
