#include "obs/trace_reader.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <sstream>
#include <unordered_map>

#include "obs/trace_sink.hpp"
#include "support/table.hpp"

namespace ldke::obs {

std::optional<TraceData> load_trace(std::istream& in) {
  TraceData data;
  bool have_meta = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = JsonValue::parse(line);
    if (!parsed || !parsed->is_object()) {
      ++data.skipped_lines;
      continue;
    }
    const std::string type = parsed->string_at("type");
    if (type == "meta") {
      const auto version = static_cast<int>(parsed->int_at("v"));
      if (version > kTraceSchemaVersion) return std::nullopt;
      data.version = version;
      data.meta = std::move(*parsed);
      have_meta = true;
    } else if (type == "span") {
      TraceSpan span;
      span.name = parsed->string_at("name");
      span.t0_ns = parsed->int_at("t0");
      span.t1_ns = parsed->int_at("t1", -1);
      span.depth = static_cast<std::uint32_t>(parsed->int_at("depth"));
      data.spans.push_back(std::move(span));
    } else if (type == "pkt") {
      TracePacket pkt;
      pkt.t_ns = parsed->int_at("t");
      pkt.sender = static_cast<std::uint32_t>(parsed->int_at("sender"));
      pkt.kind = parsed->string_at("kind");
      pkt.bytes = static_cast<std::uint32_t>(parsed->int_at("bytes"));
      data.packets.push_back(std::move(pkt));
    } else if (type == "audit") {
      TraceAudit audit;
      audit.t_ns = parsed->int_at("t");
      audit.kind = parsed->string_at("kind");
      audit.actor = static_cast<std::uint32_t>(parsed->int_at("actor"));
      audit.subject = static_cast<std::uint32_t>(
          parsed->int_at("subject", kAuditNoSubject));
      audit.arg = static_cast<std::uint64_t>(parsed->int_at("arg"));
      data.audits.push_back(std::move(audit));
    } else if (type == "health") {
      HealthSample sample;
      sample.t_ns = parsed->int_at("t");
      sample.phase = parsed->string_at("phase");
      sample.active_nodes =
          static_cast<std::uint32_t>(parsed->int_at("active"));
      sample.live_links =
          static_cast<std::uint32_t>(parsed->int_at("live_links"));
      sample.secured_links =
          static_cast<std::uint32_t>(parsed->int_at("secured_links"));
      sample.secured_link_fraction = parsed->number_at("secured_frac");
      sample.key_components =
          static_cast<std::uint32_t>(parsed->int_at("components"));
      sample.largest_component =
          static_cast<std::uint32_t>(parsed->int_at("largest"));
      sample.delivered =
          static_cast<std::uint64_t>(parsed->int_at("delivered"));
      sample.latency_p50_ms = parsed->number_at("p50_ms");
      sample.latency_p95_ms = parsed->number_at("p95_ms");
      sample.epoch_skew =
          static_cast<std::uint64_t>(parsed->int_at("epoch_skew"));
      sample.epoch_mean = parsed->number_at("epoch_mean");
      data.health.push_back(std::move(sample));
    } else if (type == "delivery") {
      DeliveryTracker::Sample sample;
      sample.source = static_cast<std::uint32_t>(parsed->int_at("src"));
      sample.t_tx_ns = parsed->int_at("t_tx");
      sample.t_rx_ns = parsed->int_at("t_rx");
      data.deliveries.push_back(sample);
    } else if (type == "counters") {
      const JsonValue* snapshot = parsed->find("snapshot");
      if (snapshot != nullptr) data.counters = *snapshot;
    } else if (type == "trace_drops") {
      data.trace_dropped += static_cast<std::uint64_t>(parsed->int_at("dropped"));
      data.trace_filtered +=
          static_cast<std::uint64_t>(parsed->int_at("filtered"));
    } else {
      ++data.skipped_lines;  // unknown type: forward-compatible skip
    }
  }
  if (!have_meta) return std::nullopt;
  return data;
}

std::vector<PhaseRow> phase_rows(const TraceData& data) {
  std::vector<PhaseRow> rows;
  rows.reserve(data.spans.size());
  for (const TraceSpan& span : data.spans) {
    PhaseRow row;
    row.name = span.name;
    row.depth = span.depth;
    row.start_s = static_cast<double>(span.t0_ns) * 1e-9;
    row.end_s = span.closed() ? static_cast<double>(span.t1_ns) * 1e-9 : -1.0;
    for (const TracePacket& pkt : data.packets) {
      if (span.contains(pkt.t_ns)) {
        ++row.packets;
        row.bytes += pkt.bytes;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

std::vector<KindRow> kind_rows_filtered(const TraceData& data,
                                        std::int64_t t0_ns,
                                        std::int64_t t1_ns) {
  std::map<std::string, KindRow> by_kind;
  for (const TracePacket& pkt : data.packets) {
    if (pkt.t_ns < t0_ns || (t1_ns >= 0 && pkt.t_ns >= t1_ns)) continue;
    KindRow& row = by_kind[pkt.kind];
    row.kind = pkt.kind;
    ++row.packets;
    row.bytes += pkt.bytes;
  }
  std::vector<KindRow> rows;
  rows.reserve(by_kind.size());
  for (auto& [_, row] : by_kind) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(), [](const KindRow& a, const KindRow& b) {
    return a.bytes != b.bytes ? a.bytes > b.bytes : a.kind < b.kind;
  });
  return rows;
}

}  // namespace

std::vector<KindRow> kind_rows(const TraceData& data) {
  return kind_rows_filtered(data, INT64_MIN, -1);
}

std::vector<KindRow> kind_rows_in_phase(const TraceData& data,
                                        std::string_view phase) {
  for (const TraceSpan& span : data.spans) {
    if (span.name == phase) {
      return kind_rows_filtered(data, span.t0_ns,
                                span.closed() ? span.t1_ns : -1);
    }
  }
  return {};
}

std::vector<TalkerRow> top_talkers(const TraceData& data, std::size_t n) {
  std::unordered_map<std::uint32_t, TalkerRow> by_sender;
  for (const TracePacket& pkt : data.packets) {
    TalkerRow& row = by_sender[pkt.sender];
    row.sender = pkt.sender;
    ++row.packets;
    row.bytes += pkt.bytes;
  }
  std::vector<TalkerRow> rows;
  rows.reserve(by_sender.size());
  for (auto& [_, row] : by_sender) rows.push_back(row);
  std::sort(rows.begin(), rows.end(),
            [](const TalkerRow& a, const TalkerRow& b) {
              return a.bytes != b.bytes ? a.bytes > b.bytes
                                        : a.sender < b.sender;
            });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

namespace {

/// Percentile report over a pre-collected latency sample set.
LatencyReport report_from_samples(std::vector<double> ms) {
  LatencyReport report;
  report.count = ms.size();
  if (ms.empty()) return report;
  double sum = 0.0;
  for (const double v : ms) sum += v;
  std::sort(ms.begin(), ms.end());
  const auto at = [&](double q) {
    const auto idx =
        static_cast<std::size_t>(q * static_cast<double>(ms.size() - 1) + 0.5);
    return ms[std::min(idx, ms.size() - 1)];
  };
  report.mean_ms = sum / static_cast<double>(ms.size());
  report.p50_ms = at(0.50);
  report.p90_ms = at(0.90);
  report.p95_ms = at(0.95);
  report.p99_ms = at(0.99);
  report.max_ms = ms.back();
  return report;
}

const TraceSpan* find_first_span(const TraceData& data,
                                 std::string_view name) {
  for (const TraceSpan& span : data.spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

}  // namespace

LatencyReport latency_report(const TraceData& data) {
  std::vector<double> ms;
  ms.reserve(data.deliveries.size());
  for (const DeliveryTracker::Sample& s : data.deliveries) {
    ms.push_back(s.latency_s() * 1e3);
  }
  return report_from_samples(std::move(ms));
}

LatencyReport latency_report_in_phase(const TraceData& data,
                                      std::string_view phase) {
  const TraceSpan* span = find_first_span(data, phase);
  if (span == nullptr) return {};
  std::vector<double> ms;
  for (const DeliveryTracker::Sample& s : data.deliveries) {
    if (span->contains(s.t_rx_ns)) ms.push_back(s.latency_s() * 1e3);
  }
  return report_from_samples(std::move(ms));
}

std::optional<RateReport> steady_rate(const TraceData& data) {
  const TraceSpan* span = find_first_span(data, "steady_state");
  if (span == nullptr || !span->closed()) span = find_first_span(data, "run");
  if (span == nullptr || !span->closed() || span->t1_ns <= span->t0_ns) {
    return std::nullopt;
  }
  RateReport rate;
  rate.window = span->name;
  rate.window_s = static_cast<double>(span->t1_ns - span->t0_ns) * 1e-9;
  for (const TracePacket& pkt : data.packets) {
    if (span->contains(pkt.t_ns)) ++rate.packets;
  }
  rate.pkts_per_s = static_cast<double>(rate.packets) / rate.window_s;
  return rate;
}

double setup_messages_per_node(const TraceData& data) {
  const std::int64_t nodes = data.node_count();
  if (nodes <= 0) return 0.0;
  std::uint64_t setup_msgs = 0;
  for (const TracePacket& pkt : data.packets) {
    if (pkt.kind == "hello" || pkt.kind == "link_advert") ++setup_msgs;
  }
  return static_cast<double>(setup_msgs) / static_cast<double>(nodes);
}

std::vector<AuditKindRow> audit_kind_rows(const TraceData& data) {
  std::vector<AuditKindRow> rows;
  std::unordered_map<std::string, std::size_t> index;
  for (const TraceAudit& audit : data.audits) {
    auto [it, inserted] = index.emplace(audit.kind, rows.size());
    if (inserted) {
      AuditKindRow row;
      row.kind = audit.kind;
      row.first_s = static_cast<double>(audit.t_ns) * 1e-9;
      rows.push_back(std::move(row));
    }
    AuditKindRow& row = rows[it->second];
    ++row.count;
    row.last_s = static_cast<double>(audit.t_ns) * 1e-9;
  }
  return rows;
}

std::vector<ConvergenceRow> eviction_convergence(const TraceData& data) {
  std::vector<ConvergenceRow> rows;
  for (std::size_t i = 0; i < data.audits.size(); ++i) {
    const TraceAudit& evict = data.audits[i];
    if (evict.kind != "eviction_issued") continue;
    ConvergenceRow row;
    row.evict_s = static_cast<double>(evict.t_ns) * 1e-9;
    row.victim_cid = evict.subject;
    // The stream is time-sorted, so the first later refresh_applied is
    // the earliest surviving node to land a fresh epoch.
    for (std::size_t j = i + 1; j < data.audits.size(); ++j) {
      const TraceAudit& refresh = data.audits[j];
      if (refresh.kind == "refresh_applied" && refresh.t_ns >= evict.t_ns) {
        row.converge_ms =
            static_cast<double>(refresh.t_ns - evict.t_ns) * 1e-6;
        row.converged = true;
        break;
      }
    }
    rows.push_back(row);
  }
  return rows;
}

// ---- rendering ------------------------------------------------------------

std::string render_phases(const TraceData& data) {
  support::TextTable table({"phase", "start_s", "end_s", "dur_s", "pkts",
                            "bytes"});
  for (const PhaseRow& row : phase_rows(data)) {
    std::string name(row.depth * 2, ' ');
    name += row.name;
    table.add_row({std::move(name), support::fmt(row.start_s),
                   row.end_s < 0 ? "open" : support::fmt(row.end_s),
                   row.end_s < 0 ? "-"
                                 : support::fmt(row.end_s - row.start_s),
                   std::to_string(row.packets), std::to_string(row.bytes)});
  }
  return table.render();
}

std::string render_traffic(const TraceData& data) {
  std::uint64_t total_bytes = 0;
  for (const TracePacket& pkt : data.packets) total_bytes += pkt.bytes;
  support::TextTable table({"kind", "pkts", "bytes", "bytes/pkt", "share"});
  for (const KindRow& row : kind_rows(data)) {
    const double share =
        total_bytes == 0 ? 0.0
                         : static_cast<double>(row.bytes) /
                               static_cast<double>(total_bytes) * 100.0;
    table.add_row({row.kind, std::to_string(row.packets),
                   std::to_string(row.bytes),
                   support::fmt(static_cast<double>(row.bytes) /
                                    static_cast<double>(row.packets),
                                1),
                   support::fmt(share, 1) + "%"});
  }
  std::string out = table.render();
  // Sustained rate over the steady-state window (falls back to "run").
  if (const auto rate = steady_rate(data)) {
    out += rate->window + " window: " + std::to_string(rate->packets) +
           " pkts / " + support::fmt(rate->window_s, 3) + " s = " +
           support::fmt(rate->pkts_per_s, 1) + " pkts/s\n";
  }
  return out;
}

std::string render_talkers(const TraceData& data, std::size_t n) {
  support::TextTable table({"sender", "pkts", "bytes"});
  for (const TalkerRow& row : top_talkers(data, n)) {
    table.add_row({std::to_string(row.sender), std::to_string(row.packets),
                   std::to_string(row.bytes)});
  }
  return table.render();
}

std::string render_latency(const TraceData& data) {
  const LatencyReport report = latency_report(data);
  support::TextTable table({"window", "delivered", "mean_ms", "p50_ms",
                            "p90_ms", "p95_ms", "p99_ms", "max_ms"});
  const auto add = [&table](const char* window, const LatencyReport& r) {
    table.add_row({window, std::to_string(r.count), support::fmt(r.mean_ms),
                   support::fmt(r.p50_ms), support::fmt(r.p90_ms),
                   support::fmt(r.p95_ms), support::fmt(r.p99_ms),
                   support::fmt(r.max_ms)});
  };
  add("all", report);
  // Steady-state DATA view, when the trace carries that window.
  const LatencyReport steady = latency_report_in_phase(data, "steady_state");
  if (steady.count > 0) add("steady_state", steady);
  return table.render();
}

std::string render_audit(const TraceData& data) {
  if (data.audits.empty()) {
    return "no audit records (v1 trace, or run without an audit sink)\n";
  }
  support::TextTable kinds({"kind", "count", "first_s", "last_s"});
  for (const AuditKindRow& row : audit_kind_rows(data)) {
    kinds.add_row({row.kind, std::to_string(row.count),
                   support::fmt(row.first_s, 3), support::fmt(row.last_s, 3)});
  }
  std::string out = "audit events by kind\n" + kinds.render();

  // Lifecycle timeline: the structural events only — per-node refresh /
  // replay noise stays in the census above.
  static constexpr std::string_view kLifecycle[] = {
      "eviction_issued", "evicted",  "join_started", "join_admitted",
      "join_rejected",   "node_left", "node_failed",  "partition",
      "heal",            "refresh_round", "nonce_wrap_abort",
  };
  constexpr std::size_t kMaxTimelineRows = 40;
  std::uint64_t lifecycle_total = 0;
  support::TextTable timeline({"t_s", "kind", "actor", "subject", "arg"});
  for (const TraceAudit& audit : data.audits) {
    bool structural = false;
    for (const std::string_view name : kLifecycle) {
      if (audit.kind == name) {
        structural = true;
        break;
      }
    }
    if (!structural) continue;
    ++lifecycle_total;
    if (lifecycle_total > kMaxTimelineRows) continue;
    timeline.add_row(
        {support::fmt(static_cast<double>(audit.t_ns) * 1e-9, 3), audit.kind,
         std::to_string(audit.actor),
         audit.subject == kAuditNoSubject ? "-" : std::to_string(audit.subject),
         std::to_string(audit.arg)});
  }
  if (lifecycle_total > 0) {
    out += "\nlifecycle timeline\n" + timeline.render();
    if (lifecycle_total > kMaxTimelineRows) {
      out += "(+" + std::to_string(lifecycle_total - kMaxTimelineRows) +
             " more lifecycle events)\n";
    }
  }

  const auto convergence = eviction_convergence(data);
  if (!convergence.empty()) {
    support::TextTable conv({"evict_s", "victim_cid", "re-key in"});
    for (const ConvergenceRow& row : convergence) {
      conv.add_row({support::fmt(row.evict_s, 3),
                    row.victim_cid == kAuditNoSubject
                        ? "-"
                        : std::to_string(row.victim_cid),
                    row.converged ? support::fmt(row.converge_ms, 1) + " ms"
                                  : "pending at trace end"});
    }
    out += "\neviction -> re-key convergence\n" + conv.render();
  }
  return out;
}

std::string render_health(const TraceData& data) {
  if (data.health.empty()) {
    return "no health records (v1 trace, or run without a health probe)\n";
  }
  support::TextTable table({"phase", "t_s", "active", "secured/links",
                            "secured_frac", "comps", "largest", "delivered",
                            "p50_ms", "p95_ms", "epoch_skew"});
  for (const HealthSample& s : data.health) {
    table.add_row({s.phase, support::fmt(static_cast<double>(s.t_ns) * 1e-9, 3),
                   std::to_string(s.active_nodes),
                   std::to_string(s.secured_links) + "/" +
                       std::to_string(s.live_links),
                   support::fmt(s.secured_link_fraction, 3),
                   std::to_string(s.key_components),
                   std::to_string(s.largest_component),
                   std::to_string(s.delivered), support::fmt(s.latency_p50_ms),
                   support::fmt(s.latency_p95_ms),
                   std::to_string(s.epoch_skew)});
  }
  return "protocol health by phase\n" + table.render();
}

std::string render_summary(const TraceData& data) {
  std::uint64_t total_bytes = 0;
  std::int64_t last_ns = 0;
  for (const TracePacket& pkt : data.packets) {
    total_bytes += pkt.bytes;
    if (pkt.t_ns > last_ns) last_ns = pkt.t_ns;
  }
  support::TextTable table({"metric", "value"});
  table.add_row({"schema version", std::to_string(data.version)});
  table.add_row({"tool", data.meta.string_at("tool", "?")});
  table.add_row({"nodes", std::to_string(data.node_count())});
  table.add_row({"density", support::fmt(data.meta.number_at("density"), 1)});
  table.add_row(
      {"seed", std::to_string(data.meta.int_at("seed"))});
  table.add_row({"packets traced", std::to_string(data.packets.size())});
  table.add_row({"bytes traced", std::to_string(total_bytes)});
  table.add_row({"last packet (s)",
                 support::fmt(static_cast<double>(last_ns) * 1e-9)});
  table.add_row(
      {"setup msgs/node (Fig 9)", support::fmt(setup_messages_per_node(data))});
  table.add_row({"spans", std::to_string(data.spans.size())});
  table.add_row({"deliveries", std::to_string(data.deliveries.size())});
  table.add_row({"audit events", std::to_string(data.audits.size())});
  table.add_row({"health samples", std::to_string(data.health.size())});
  table.add_row({"trace drops", std::to_string(data.trace_dropped)});
  table.add_row({"trace filtered", std::to_string(data.trace_filtered)});
  if (data.skipped_lines > 0) {
    table.add_row({"skipped lines", std::to_string(data.skipped_lines)});
  }
  std::string out = table.render();

  // Lane balance: present only when the run used the sharded kernel
  // (the runner publishes kernel.* gauges after each sharded run).
  const JsonValue* gauges = data.counters.find("gauges");
  if (gauges != nullptr && gauges->number_at("kernel.lanes", 0.0) >= 2.0) {
    const auto lanes =
        static_cast<std::size_t>(gauges->number_at("kernel.lanes"));
    out += "\nlane balance (sharded kernel)\n";
    support::TextTable head({"metric", "value"});
    head.add_row({"lanes", std::to_string(lanes)});
    head.add_row({"windows", support::fmt(gauges->number_at("kernel.windows"), 0)});
    head.add_row(
        {"halo packets", support::fmt(gauges->number_at("kernel.halo_packets"), 0)});
    head.add_row(
        {"lookahead (us)", support::fmt(gauges->number_at("kernel.lookahead_us"), 1)});
    head.add_row(
        {"event skew", support::fmt(gauges->number_at("kernel.lane_skew"), 3)});
    out += head.render();
    support::TextTable per_lane(
        {"lane", "events", "halo out", "busy (ms)", "barrier wait (ms)"});
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::string prefix = "kernel.lane" + std::to_string(l);
      per_lane.add_row(
          {std::to_string(l),
           support::fmt(gauges->number_at(prefix + ".events"), 0),
           support::fmt(gauges->number_at(prefix + ".halo_out"), 0),
           support::fmt(gauges->number_at(prefix + ".busy_ms"), 1),
           support::fmt(gauges->number_at(prefix + ".barrier_wait_ms"), 1)});
    }
    out += per_lane.render();
  }
  return out;
}

}  // namespace ldke::obs
