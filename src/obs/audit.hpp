#pragma once
/// \file audit.hpp
/// Security-audit event stream: a typed record of *why* the key graph
/// changed.  Protocol code (SensorNode, BaseStation, DataPlaneEngine,
/// ScenarioEngine) emits AuditEvents through an optional AuditSink hung
/// off the Network; with no sink attached the emission site is a single
/// null-check.  The sink is lane-sharded so concurrent lanes of the
/// sharded kernel record without locks; merged() restores one canonical
/// stream ordered by (sim time, actor) — an order that is invariant
/// under the lane count because every actor lives in exactly one lane
/// and its event subsequence is deterministic.
///
/// HealthSample is the companion gauge record: a point-in-time probe of
/// protocol health (secured-link fraction, key-graph connectivity,
/// windowed delivery latency, refresh-epoch skew) sampled per scenario
/// phase.  Both families serialize into the JSONL trace as schema-v2
/// records ("audit" / "health", see trace_sink.hpp).

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ldke::obs {

enum class AuditKind : std::uint8_t {
  kKeyEstablished,   // head minted its cluster key (actor = head)
  kMemberJoined,     // member adopted a head's key (subject = head)
  kRefreshRound,     // a global §IV-C refresh round kicked off (arg = round)
  kRefreshApplied,   // node advanced its hash epoch (subject = cid, arg = epoch)
  kRefreshReplay,    // stale REFRESH rejected (subject = cid, arg = epoch)
  kEvictionIssued,   // base station revoked a cluster (subject = victim cid)
  kEvicted,          // node saw its own cluster revoked and wiped its keys
  kJoinStarted,      // §IV-E JOIN_HELLO sent
  kJoinAdmitted,     // join committed (subject = cid, arg = epoch)
  kJoinRejected,     // join reply failed auth / epoch cap (subject = cid)
  kNodeLeft,         // scenario churn: graceful leave
  kNodeFailed,       // scenario churn: crash-stop
  kSleep,            // duty cycle: radio down
  kWake,             // duty cycle: radio up (arg = hash epochs caught up)
  kPartition,        // scripted partition wall raised (arg = x position, mm)
  kHeal,             // partition wall removed
  kReplayRejected,   // envelope nonce <= last seen (subject = sender, arg = nonce)
  kNonceWrapAbort,   // envelope counter exhausted; node halts before reuse
  kNeighborKeyStored,   // node stored a neighboring cluster's key (subject = cid)
  kNeighborKeyDropped,  // node dropped a neighboring cluster's key (subject = cid)
};

inline constexpr std::size_t kAuditKindCount =
    static_cast<std::size_t>(AuditKind::kNeighborKeyDropped) + 1;

/// Stable snake_case name used on the wire ("refresh_applied", ...).
[[nodiscard]] std::string_view audit_kind_name(AuditKind kind) noexcept;
[[nodiscard]] std::optional<AuditKind> audit_kind_from_name(
    std::string_view name) noexcept;

/// Sentinel for events with no counterpart node/cluster.
inline constexpr std::uint32_t kAuditNoSubject = 0xffffffffu;

struct AuditEvent {
  std::int64_t t_ns = 0;
  std::uint32_t actor = 0;
  std::uint32_t subject = kAuditNoSubject;
  std::uint64_t arg = 0;
  AuditKind kind = AuditKind::kKeyEstablished;
  friend bool operator==(const AuditEvent&, const AuditEvent&) = default;
};

/// Point-in-time protocol-health gauges, sampled at a phase boundary.
/// All derivable quantities are precomputed so the trace line is
/// self-contained: a reader reproduces the health table with no access
/// to the simulation.
struct HealthSample {
  std::int64_t t_ns = 0;
  std::string phase;
  std::uint32_t active_nodes = 0;    // alive, awake, unpartitioned-capable
  std::uint32_t live_links = 0;      // in-range pairs among active nodes
  std::uint32_t secured_links = 0;   // live links covered by a shared key
  double secured_link_fraction = 0.0;
  std::uint32_t key_components = 0;  // key-graph components among active nodes
  std::uint32_t largest_component = 0;
  std::uint64_t delivered = 0;       // window_stats over the phase window
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  std::uint64_t epoch_skew = 0;      // max - min hash epoch over keyed actives
  double epoch_mean = 0.0;
};

/// Synchronous tap on the audit stream, dispatched at the emission site
/// (Network::audit) alongside the bounded AuditSink.  Unlike the sink —
/// which evicts under pressure and therefore cannot back incremental
/// state — a listener sees every event exactly once, in emission order.
/// Implementations must be cheap: they run inline with protocol code.
class AuditListener {
 public:
  virtual ~AuditListener() = default;
  virtual void on_audit(const AuditEvent& event) = 0;
};

/// Bounded, lane-sharded recorder for AuditEvents.  One shard per lane
/// on its own cache line; record() is wait-free per lane.  When a shard
/// fills, the oldest quarter is evicted (same policy as PacketTrace) and
/// accounted in dropped().
class AuditSink {
 public:
  explicit AuditSink(std::size_t capacity_per_lane = 1 << 18);

  /// Resizes to \p lanes shards, keeping shard 0's content when growing
  /// from the serial default.  Call before any concurrent record().
  void enable_lanes(std::size_t lanes);

  void record(std::size_t lane, const AuditEvent& event);

  /// Lane shards concatenated in lane order, then stably sorted by
  /// (t_ns, actor): the canonical merged stream (lane-count invariant).
  [[nodiscard]] std::vector<AuditEvent> merged() const;

  [[nodiscard]] std::array<std::uint64_t, kAuditKindCount> counts_by_kind()
      const;

  [[nodiscard]] std::size_t lanes() const noexcept { return shards_.size(); }
  [[nodiscard]] std::uint64_t total_seen() const noexcept;
  [[nodiscard]] std::uint64_t total_recorded() const noexcept;
  [[nodiscard]] std::uint64_t total_dropped() const noexcept;

  void clear() noexcept;

 private:
  struct alignas(64) Shard {
    std::vector<AuditEvent> events;
    std::uint64_t seen = 0;
    std::uint64_t dropped = 0;
  };

  std::size_t capacity_per_lane_;
  std::vector<Shard> shards_;
};

}  // namespace ldke::obs
