#include "obs/delivery.hpp"

#include <algorithm>

namespace ldke::obs {

double DeliveryTracker::latency_percentile_s(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> latencies;
  latencies.reserve(samples_.size());
  for (const Sample& s : samples_) latencies.push_back(s.latency_s());
  std::sort(latencies.begin(), latencies.end());
  if (q <= 0.0) return latencies.front();
  if (q >= 1.0) return latencies.back();
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(latencies.size() - 1) + 0.5);
  return latencies[std::min(idx, latencies.size() - 1)];
}

JsonValue DeliveryTracker::to_json() const {
  JsonValue out;
  out.set("originated", originated_);
  out.set("delivered", delivered());
  out.set("unmatched", unmatched_);
  out.set("p50_ms", latency_percentile_s(0.50) * 1e3);
  out.set("p90_ms", latency_percentile_s(0.90) * 1e3);
  out.set("p95_ms", latency_percentile_s(0.95) * 1e3);
  out.set("p99_ms", latency_percentile_s(0.99) * 1e3);
  out.set("max_ms", latency_percentile_s(1.0) * 1e3);
  return out;
}

}  // namespace ldke::obs
