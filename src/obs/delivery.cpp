#include "obs/delivery.hpp"

#include <algorithm>

namespace ldke::obs {

double DeliveryTracker::latency_percentile_s(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> latencies;
  latencies.reserve(samples_.size());
  for (const Sample& s : samples_) latencies.push_back(s.latency_s());
  std::sort(latencies.begin(), latencies.end());
  if (q <= 0.0) return latencies.front();
  if (q >= 1.0) return latencies.back();
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(latencies.size() - 1) + 0.5);
  return latencies[std::min(idx, latencies.size() - 1)];
}

DeliveryTracker::WindowStats DeliveryTracker::window_stats(
    std::int64_t t_tx_from_ns, std::int64_t t_tx_until_ns) const {
  WindowStats out;
  std::vector<double> latencies;
  for (const Sample& s : samples_) {
    if (s.t_tx_ns < t_tx_from_ns || s.t_tx_ns > t_tx_until_ns) continue;
    latencies.push_back(s.latency_s());
  }
  out.delivered = latencies.size();
  if (latencies.empty()) return out;
  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (const double l : latencies) sum += l;
  out.mean_s = sum / static_cast<double>(latencies.size());
  const auto at = [&latencies](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(idx, latencies.size() - 1)];
  };
  out.p50_s = at(0.50);
  out.p95_s = at(0.95);
  return out;
}

JsonValue DeliveryTracker::to_json() const {
  JsonValue out;
  out.set("originated", originated_);
  out.set("delivered", delivered());
  out.set("unmatched", unmatched_);
  out.set("p50_ms", latency_percentile_s(0.50) * 1e3);
  out.set("p90_ms", latency_percentile_s(0.90) * 1e3);
  out.set("p95_ms", latency_percentile_s(0.95) * 1e3);
  out.set("p99_ms", latency_percentile_s(0.99) * 1e3);
  out.set("max_ms", latency_percentile_s(1.0) * 1e3);
  return out;
}

}  // namespace ldke::obs
