#include "obs/trace_sink.hpp"

namespace ldke::obs {

void TraceSink::emit(const JsonValue& line) {
  os_ << line.dump() << '\n';
  ++lines_;
}

void TraceSink::write_meta(std::string_view tool, JsonValue fields) {
  JsonValue line;
  line.set("type", "meta");
  line.set("v", kTraceSchemaVersion);
  line.set("tool", tool);
  if (fields.is_object()) {
    for (const auto& [k, v] : fields.as_object()) line.set(k, v);
  }
  emit(line);
}

void TraceSink::write_span(const TraceSpan& span) {
  JsonValue line;
  line.set("type", "span");
  line.set("name", span.name);
  line.set("t0", span.t0_ns);
  line.set("t1", span.t1_ns);
  line.set("depth", span.depth);
  emit(line);
}

void TraceSink::write_packet(std::int64_t t_ns, std::uint32_t sender,
                             std::string_view kind, std::uint32_t bytes) {
  JsonValue line;
  line.set("type", "pkt");
  line.set("t", t_ns);
  line.set("sender", sender);
  line.set("kind", kind);
  line.set("bytes", bytes);
  emit(line);
}

void TraceSink::write_audit(const AuditEvent& event) {
  JsonValue line;
  line.set("type", "audit");
  line.set("t", event.t_ns);
  line.set("kind", audit_kind_name(event.kind));
  line.set("actor", event.actor);
  if (event.subject != kAuditNoSubject) line.set("subject", event.subject);
  line.set("arg", event.arg);
  emit(line);
}

void TraceSink::write_health(const HealthSample& sample) {
  JsonValue line;
  line.set("type", "health");
  line.set("t", sample.t_ns);
  line.set("phase", sample.phase);
  line.set("active", sample.active_nodes);
  line.set("live_links", sample.live_links);
  line.set("secured_links", sample.secured_links);
  line.set("secured_frac", sample.secured_link_fraction);
  line.set("components", sample.key_components);
  line.set("largest", sample.largest_component);
  line.set("delivered", sample.delivered);
  line.set("p50_ms", sample.latency_p50_ms);
  line.set("p95_ms", sample.latency_p95_ms);
  line.set("epoch_skew", sample.epoch_skew);
  line.set("epoch_mean", sample.epoch_mean);
  emit(line);
}

void TraceSink::write_delivery(const DeliveryTracker::Sample& sample) {
  JsonValue line;
  line.set("type", "delivery");
  line.set("src", sample.source);
  line.set("t_tx", sample.t_tx_ns);
  line.set("t_rx", sample.t_rx_ns);
  emit(line);
}

void TraceSink::write_counters(JsonValue snapshot) {
  JsonValue line;
  line.set("type", "counters");
  line.set("snapshot", std::move(snapshot));
  emit(line);
}

void TraceSink::write_trace_drops(std::uint64_t seen, std::uint64_t recorded,
                                  std::uint64_t dropped,
                                  std::uint64_t filtered) {
  JsonValue line;
  line.set("type", "trace_drops");
  line.set("seen", seen);
  line.set("recorded", recorded);
  line.set("dropped", dropped);
  line.set("filtered", filtered);
  emit(line);
}

void TraceSink::write_record(std::string_view type, JsonValue fields) {
  JsonValue line;
  line.set("type", type);
  if (fields.is_object()) {
    for (const auto& [k, v] : fields.as_object()) line.set(k, v);
  }
  emit(line);
}

}  // namespace ldke::obs
