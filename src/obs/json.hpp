#pragma once
/// \file json.hpp
/// Minimal JSON document model for the observability layer: the trace
/// sink serializes with it, ldke_trace and the RunSummary round-trip
/// parse with it.  Objects preserve insertion order so emitted artifacts
/// are stable across runs (diff-able, golden-testable).  Dependency-free
/// by design — the repo bakes in no JSON library and the schema is small.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ldke::obs {

class JsonValue;

/// Insertion-ordered key/value list (JSON objects are small here; linear
/// lookup is fine and keeps emission order deterministic).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  JsonValue(std::nullptr_t) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  JsonValue(std::int64_t i) : kind_(Kind::kNumber), num_(static_cast<double>(i)), int_(i), is_int_(true) {}
  JsonValue(std::uint64_t u) : JsonValue(static_cast<std::int64_t>(u)) {}
  JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}
  JsonValue(unsigned i) : JsonValue(static_cast<std::int64_t>(i)) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(std::string_view s) : kind_(Kind::kString), str_(s) {}
  JsonValue(JsonArray a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  JsonValue(JsonObject o) : kind_(Kind::kObject), obj_(std::move(o)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }

  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const noexcept {
    return kind_ == Kind::kNumber ? num_ : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const noexcept {
    if (kind_ != Kind::kNumber) return fallback;
    return is_int_ ? int_ : static_cast<std::int64_t>(num_);
  }
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }
  [[nodiscard]] const JsonArray& as_array() const noexcept { return arr_; }
  [[nodiscard]] const JsonObject& as_object() const noexcept { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Convenience typed lookups with fallbacks (missing key -> fallback).
  [[nodiscard]] double number_at(std::string_view key,
                                 double fallback = 0.0) const noexcept;
  [[nodiscard]] std::int64_t int_at(std::string_view key,
                                    std::int64_t fallback = 0) const noexcept;
  [[nodiscard]] std::string string_at(std::string_view key,
                                      std::string_view fallback = "") const;
  [[nodiscard]] bool bool_at(std::string_view key,
                             bool fallback = false) const noexcept;

  /// Appends a member (object) / element (array); converts a null value
  /// to the needed aggregate kind first.
  JsonValue& set(std::string key, JsonValue value);
  JsonValue& push(JsonValue value);

  /// Compact single-line serialization (JSONL-friendly).
  [[nodiscard]] std::string dump() const;

  /// Strict-enough parser for what dump() produces (plus whitespace).
  /// Returns nullopt on malformed input or trailing garbage.
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text);

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Escapes a string for embedding in a JSON document.
[[nodiscard]] std::string json_escape(std::string_view raw);

}  // namespace ldke::obs
