#pragma once
/// \file metrics.hpp
/// Unified metric registry for one trial: named counters (absorbing the
/// old sim::TraceCounters — that name is now an alias of this class),
/// plus typed gauges and log-bucketed histograms.  All three families
/// support interned handles so true per-event hot paths (channel
/// transmissions, scheduler ticks, crypto ops) pay one pointer
/// indirection per update instead of a string hash/compare.
///
/// Slot stability: every family stores values in a std::map whose nodes
/// never move, and clear() zeroes handle-backed slots instead of erasing
/// them, so an outstanding handle stays valid for the registry lifetime.

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace ldke::obs {

/// Fixed-footprint log-bucketed histogram of non-negative doubles: 4
/// sub-buckets per power of two across 2^-32..2^32, plus exact count /
/// sum / min / max.  observe() is branch-light arithmetic — cheap enough
/// for per-event use; percentiles are approximate (within a sub-bucket,
/// ~19% relative width).
class Histogram {
 public:
  static constexpr int kSubBucketsLog2 = 2;  ///< 4 sub-buckets per octave
  static constexpr int kMinExponent = -32;
  static constexpr int kMaxExponent = 32;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExponent - kMinExponent)
      << kSubBucketsLog2;

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Approximate quantile (\p q in [0,1]); exact at the tails because the
  /// result is clamped to the observed [min, max].
  [[nodiscard]] double percentile(double q) const noexcept;

  void clear() noexcept { *this = Histogram{}; }

  /// Folds \p other into this histogram (bucket-wise add; min/max/sum
  /// widen).  Used to merge per-lane registries after a sharded run.
  void merge_from(const Histogram& other) noexcept;

  /// {"count":..,"mean":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..}
  [[nodiscard]] JsonValue to_json() const;

 private:
  [[nodiscard]] static std::size_t bucket_of(double value) noexcept;
  [[nodiscard]] static double bucket_mid(std::size_t index) noexcept;

  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricRegistry {
 public:
  /// Pre-resolved counter slot for hot paths: increments through it skip
  /// the name lookup entirely.  Obtained from handle(); stays valid for
  /// the lifetime of the registry — clear() zeroes handle-backed slots
  /// instead of erasing them, and std::map nodes never move.
  class Handle {
   public:
    Handle() = default;

   private:
    friend class MetricRegistry;
    explicit Handle(std::uint64_t* slot) noexcept : slot_(slot) {}
    std::uint64_t* slot_ = nullptr;
  };

  /// Pre-resolved gauge slot (set/add through it skips the name lookup).
  class GaugeHandle {
   public:
    GaugeHandle() = default;

   private:
    friend class MetricRegistry;
    explicit GaugeHandle(double* slot) noexcept : slot_(slot) {}
    double* slot_ = nullptr;
  };

  /// Pre-resolved histogram slot.
  class HistogramHandle {
   public:
    HistogramHandle() = default;

   private:
    friend class MetricRegistry;
    explicit HistogramHandle(Histogram* hist) noexcept : hist_(hist) {}
    Histogram* hist_ = nullptr;
  };

  // ---- counters (the former sim::TraceCounters API) ----

  /// Resolves (registering if needed) the slot for \p name.
  [[nodiscard]] Handle handle(std::string_view name);

  void increment(std::string_view name, std::uint64_t by = 1);

  /// Hot-path increment: no hashing, no string compare.
  void increment(Handle h, std::uint64_t by = 1) noexcept {
    if (h.slot_ != nullptr) *h.slot_ += by;
  }

  [[nodiscard]] std::uint64_t value(std::string_view name) const noexcept;

  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>&
  all() const noexcept {
    return counters_;
  }

  // ---- gauges (last-written doubles: queue depths, rates, ratios) ----

  [[nodiscard]] GaugeHandle gauge_handle(std::string_view name);

  void set_gauge(std::string_view name, double value);
  void set_gauge(GaugeHandle h, double value) noexcept {
    if (h.slot_ != nullptr) *h.slot_ = value;
  }

  [[nodiscard]] double gauge(std::string_view name) const noexcept;

  [[nodiscard]] const std::map<std::string, double, std::less<>>& gauges()
      const noexcept {
    return gauges_;
  }

  // ---- histograms (distributions: latencies, sizes, depths) ----

  [[nodiscard]] HistogramHandle histogram_handle(std::string_view name);

  void observe(std::string_view name, double value);
  void observe(HistogramHandle h, double value) noexcept {
    if (h.hist_ != nullptr) h.hist_->observe(value);
  }

  /// nullptr when the histogram was never touched.
  [[nodiscard]] const Histogram* histogram(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
  histograms() const noexcept {
    return histograms_;
  }

  // ---- lifecycle / export ----

  /// Erases plain metrics; handle-backed slots are reset to zero but stay
  /// registered (outstanding Handles must remain valid).
  void clear() noexcept;

  /// Folds \p other into this registry: counters add, gauges overwrite
  /// (last writer wins — call in lane order for determinism), histograms
  /// bucket-merge.  \p other is clear()ed afterwards so its pinned
  /// handles stay valid but re-folding is idempotent.
  void merge_from(MetricRegistry& other);

  /// "name=value" counter lines, sorted by name (stable test output).
  [[nodiscard]] std::string to_string() const;

  /// Snapshot of everything with signal:
  /// {"counters":{..},"gauges":{..},"histograms":{..}}.
  /// Zero-valued counters are omitted — a handle-pinned counter that was
  /// never incremented (or was just clear()ed) reads identically to one
  /// that never existed, so snapshots before registration and after
  /// clear() agree.
  [[nodiscard]] JsonValue snapshot_json() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::set<std::string, std::less<>> pinned_;  ///< names with live Handles
  std::map<std::string, double, std::less<>> gauges_;
  std::set<std::string, std::less<>> pinned_gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::set<std::string, std::less<>> pinned_histograms_;
};

}  // namespace ldke::obs
