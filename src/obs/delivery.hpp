#pragma once
/// \file delivery.hpp
/// End-to-end delivery tracking for DATA messages.  The hop envelope
/// re-stamps its freshness timestamp at every forwarder, so origination
/// time cannot be recovered from the wire — instead the source reports
/// on_originate() when it wraps a reading and the final destination
/// reports on_deliver() when the envelope authenticates.  Matching is
/// per-source FIFO, which is exact under the tree routing this repo uses
/// (one path per source, FIFO channel delays).

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/json.hpp"

namespace ldke::obs {

class DeliveryTracker {
 public:
  struct Sample {
    std::uint32_t source = 0;
    std::int64_t t_tx_ns = 0;
    std::int64_t t_rx_ns = 0;

    [[nodiscard]] double latency_s() const noexcept {
      return static_cast<double>(t_rx_ns - t_tx_ns) * 1e-9;
    }
  };

  // Sources and sinks may live on different lanes of a sharded run, so
  // the report paths take a lock.  Uncontended in serial runs; the data
  // phase is not on the setup fast path.
  void on_originate(std::uint32_t source, std::int64_t now_ns) {
    const std::lock_guard<std::mutex> lock(mutex_);
    outstanding_[source].push_back(now_ns);
    ++originated_;
  }

  void on_deliver(std::uint32_t source, std::int64_t now_ns) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = outstanding_.find(source);
    if (it == outstanding_.end() || it->second.empty()) {
      ++unmatched_;  // e.g. duplicate delivery or source outside tracking
      return;
    }
    samples_.push_back(Sample{source, it->second.front(), now_ns});
    it->second.pop_front();
  }

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::uint64_t originated() const noexcept {
    return originated_;
  }
  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return samples_.size();
  }
  [[nodiscard]] std::uint64_t unmatched() const noexcept { return unmatched_; }

  /// Exact quantile over recorded latencies (sorts a copy; offline use).
  [[nodiscard]] double latency_percentile_s(double q) const;

  /// Delivered count and latency quantiles restricted to samples whose
  /// origination time falls in [t_tx_from_ns, t_tx_until_ns] — the
  /// scenario engine's per-phase window.  Offline use, like the
  /// percentile above.
  struct WindowStats {
    std::uint64_t delivered = 0;
    double p50_s = 0.0;
    double p95_s = 0.0;
    double mean_s = 0.0;
  };
  [[nodiscard]] WindowStats window_stats(std::int64_t t_tx_from_ns,
                                         std::int64_t t_tx_until_ns) const;

  void clear() noexcept {
    outstanding_.clear();
    samples_.clear();
    originated_ = 0;
    unmatched_ = 0;
  }

  /// {"originated":..,"delivered":..,"p50_ms":..,...}
  [[nodiscard]] JsonValue to_json() const;

 private:
  std::mutex mutex_;
  std::unordered_map<std::uint32_t, std::deque<std::int64_t>> outstanding_;
  std::vector<Sample> samples_;
  std::uint64_t originated_ = 0;
  std::uint64_t unmatched_ = 0;
};

}  // namespace ldke::obs
