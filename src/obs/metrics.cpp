#include "obs/metrics.hpp"

#include <cmath>
#include <sstream>

namespace ldke::obs {

// ---- Histogram ------------------------------------------------------------

std::size_t Histogram::bucket_of(double value) noexcept {
  if (!(value > 0.0)) return 0;  // 0, negatives and NaN collapse into bucket 0
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // in [0.5, 1)
  exponent -= 1;                                         // value = m2 * 2^e, m2 in [1,2)
  if (exponent < kMinExponent) return 0;
  if (exponent >= kMaxExponent) return kBucketCount - 1;
  // Sub-bucket from the leading mantissa bits: mantissa*2 in [1,2).
  const auto sub = static_cast<std::size_t>(
      (mantissa * 2.0 - 1.0) * static_cast<double>(1 << kSubBucketsLog2));
  return (static_cast<std::size_t>(exponent - kMinExponent)
          << kSubBucketsLog2) +
         (sub < (1u << kSubBucketsLog2) ? sub : (1u << kSubBucketsLog2) - 1);
}

double Histogram::bucket_mid(std::size_t index) noexcept {
  const int exponent =
      static_cast<int>(index >> kSubBucketsLog2) + kMinExponent;
  const auto sub =
      static_cast<double>(index & ((1u << kSubBucketsLog2) - 1));
  const double lo =
      1.0 + sub / static_cast<double>(1 << kSubBucketsLog2);
  const double width = 1.0 / static_cast<double>(1 << kSubBucketsLog2);
  return std::ldexp(lo + width * 0.5, exponent);
}

void Histogram::observe(double value) noexcept {
  ++buckets_[bucket_of(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge_from(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const double mid = bucket_mid(i);
      return mid < min_ ? min_ : (mid > max_ ? max_ : mid);
    }
  }
  return max_;
}

JsonValue Histogram::to_json() const {
  JsonValue out;
  out.set("count", count_);
  out.set("mean", mean());
  out.set("min", min());
  out.set("max", max());
  out.set("p50", percentile(0.50));
  out.set("p90", percentile(0.90));
  out.set("p99", percentile(0.99));
  return out;
}

// ---- MetricRegistry -------------------------------------------------------

MetricRegistry::Handle MetricRegistry::handle(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, 0).first;
  }
  pinned_.emplace(it->first);
  return Handle{&it->second};
}

void MetricRegistry::increment(std::string_view name, std::uint64_t by) {
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string{name}, by);
  } else {
    it->second += by;
  }
}

std::uint64_t MetricRegistry::value(std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

MetricRegistry::GaugeHandle MetricRegistry::gauge_handle(
    std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string{name}, 0.0).first;
  }
  pinned_gauges_.emplace(it->first);
  return GaugeHandle{&it->second};
}

void MetricRegistry::set_gauge(std::string_view name, double value) {
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string{name}, value);
  } else {
    it->second = value;
  }
}

double MetricRegistry::gauge(std::string_view name) const noexcept {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

MetricRegistry::HistogramHandle MetricRegistry::histogram_handle(
    std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string{name}, Histogram{}).first;
  }
  pinned_histograms_.emplace(it->first);
  return HistogramHandle{&it->second};
}

void MetricRegistry::observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string{name}, Histogram{}).first;
  }
  it->second.observe(value);
}

const Histogram* MetricRegistry::histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricRegistry::clear() noexcept {
  for (auto it = counters_.begin(); it != counters_.end();) {
    if (pinned_.contains(it->first)) {
      it->second = 0;
      ++it;
    } else {
      it = counters_.erase(it);
    }
  }
  for (auto it = gauges_.begin(); it != gauges_.end();) {
    if (pinned_gauges_.contains(it->first)) {
      it->second = 0.0;
      ++it;
    } else {
      it = gauges_.erase(it);
    }
  }
  for (auto it = histograms_.begin(); it != histograms_.end();) {
    if (pinned_histograms_.contains(it->first)) {
      it->second.clear();
      ++it;
    } else {
      it = histograms_.erase(it);
    }
  }
}

void MetricRegistry::merge_from(MetricRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    if (value != 0) increment(name, value);
  }
  for (const auto& [name, value] : other.gauges_) {
    if (value != 0.0) set_gauge(name, value);
  }
  for (const auto& [name, hist] : other.histograms_) {
    if (hist.count() == 0) continue;
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{}).first;
    }
    it->second.merge_from(hist);
  }
  other.clear();
}

std::string MetricRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << '=' << value << '\n';
  }
  return os.str();
}

JsonValue MetricRegistry::snapshot_json() const {
  JsonValue counters;
  for (const auto& [name, value] : counters_) {
    if (value != 0) counters.set(name, value);
  }
  if (counters.is_null()) counters = JsonValue{JsonObject{}};
  JsonValue gauges;
  for (const auto& [name, value] : gauges_) {
    if (value != 0.0) gauges.set(name, value);
  }
  if (gauges.is_null()) gauges = JsonValue{JsonObject{}};
  JsonValue histograms;
  for (const auto& [name, hist] : histograms_) {
    if (hist.count() != 0) histograms.set(name, hist.to_json());
  }
  if (histograms.is_null()) histograms = JsonValue{JsonObject{}};
  JsonValue out;
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace ldke::obs
