#pragma once
/// \file span.hpp
/// Sim-time-stamped trace spans.  A PhaseTimeline records what the run
/// was doing when: protocol phases (election, link establishment,
/// routing, forwarding, re-clustering) open and close spans against the
/// simulated clock, and nested begins stack (a routing flood inside a
/// recluster round is a child span).  Offline, ldke_trace joins packet
/// timestamps against these windows to attribute traffic per phase.
///
/// Span begin/end is append-to-vector + integer stores — cheap enough to
/// wrap around every protocol phase, though not meant for per-packet use
/// (that is what MetricRegistry handles are for).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace ldke::obs {

/// Identifier of a span within its timeline (index + 1; 0 is invalid).
using SpanId = std::size_t;

inline constexpr SpanId kInvalidSpanId = 0;

struct TraceSpan {
  std::string name;
  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = -1;     ///< -1 while still open
  std::uint32_t depth = 0;     ///< 0 = top-level phase
  SpanId parent = kInvalidSpanId;

  [[nodiscard]] bool closed() const noexcept { return t1_ns >= 0; }
  [[nodiscard]] double duration_s() const noexcept {
    return closed() ? static_cast<double>(t1_ns - t0_ns) * 1e-9 : 0.0;
  }
  [[nodiscard]] bool contains(std::int64_t t_ns) const noexcept {
    return t_ns >= t0_ns && (!closed() || t_ns < t1_ns);
  }
};

class PhaseTimeline {
 public:
  /// Opens a span at \p now_ns, nested under the innermost still-open
  /// span (if any).  Spans are recorded in begin order.
  SpanId begin_span(std::string_view name, std::int64_t now_ns);

  /// Closes \p id at \p now_ns; also closes any younger spans still open
  /// inside it (a phase ending ends its sub-phases).  Ignores invalid or
  /// already-closed ids.
  void end_span(SpanId id, std::int64_t now_ns);

  /// Records an already-bounded window retroactively (e.g. the
  /// config-derived election window inside a completed setup phase).
  /// Nested under the innermost open span at insertion time.
  SpanId add_span(std::string_view name, std::int64_t t0_ns,
                  std::int64_t t1_ns);

  [[nodiscard]] const std::vector<TraceSpan>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] std::size_t open_depth() const noexcept {
    return open_.size();
  }

  /// First span with \p name, nullptr if none.
  [[nodiscard]] const TraceSpan* find(std::string_view name) const noexcept;

  /// Sum of closed durations over every span named \p name.
  [[nodiscard]] double total_s(std::string_view name) const noexcept;

  void clear() noexcept {
    spans_.clear();
    open_.clear();
  }

  /// Array of {"name","t0","t1","depth"} in begin order (open spans get
  /// t1 = -1).
  [[nodiscard]] JsonValue to_json() const;

 private:
  std::vector<TraceSpan> spans_;
  std::vector<SpanId> open_;  ///< stack of open span ids
};

/// RAII phase guard: opens on construction, closes on destruction with
/// the time the clock callback reports then.
class ScopedSpan {
 public:
  using ClockFn = std::int64_t (*)(void*);

  ScopedSpan(PhaseTimeline& timeline, std::string_view name, ClockFn clock,
             void* ctx)
      : timeline_(timeline),
        clock_(clock),
        ctx_(ctx),
        id_(timeline.begin_span(name, clock(ctx))) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { timeline_.end_span(id_, clock_(ctx_)); }

 private:
  PhaseTimeline& timeline_;
  ClockFn clock_;
  void* ctx_;
  SpanId id_;
};

}  // namespace ldke::obs
