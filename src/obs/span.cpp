#include "obs/span.hpp"

namespace ldke::obs {

SpanId PhaseTimeline::begin_span(std::string_view name, std::int64_t now_ns) {
  TraceSpan span;
  span.name = std::string{name};
  span.t0_ns = now_ns;
  span.depth = static_cast<std::uint32_t>(open_.size());
  span.parent = open_.empty() ? kInvalidSpanId : open_.back();
  spans_.push_back(std::move(span));
  const SpanId id = spans_.size();
  open_.push_back(id);
  return id;
}

void PhaseTimeline::end_span(SpanId id, std::int64_t now_ns) {
  if (id == kInvalidSpanId || id > spans_.size()) return;
  TraceSpan& span = spans_[id - 1];
  if (span.closed()) return;
  // Close any still-open descendants first (phases end their sub-phases).
  while (!open_.empty()) {
    const SpanId top = open_.back();
    open_.pop_back();
    TraceSpan& open_span = spans_[top - 1];
    if (!open_span.closed()) open_span.t1_ns = now_ns;
    if (top == id) return;
  }
  // id was not on the open stack (already popped by an ancestor close);
  // make sure it is closed anyway.
  if (!span.closed()) span.t1_ns = now_ns;
}

SpanId PhaseTimeline::add_span(std::string_view name, std::int64_t t0_ns,
                               std::int64_t t1_ns) {
  TraceSpan span;
  span.name = std::string{name};
  span.t0_ns = t0_ns;
  span.t1_ns = t1_ns;
  span.depth = static_cast<std::uint32_t>(open_.size());
  span.parent = open_.empty() ? kInvalidSpanId : open_.back();
  spans_.push_back(std::move(span));
  return spans_.size();
}

const TraceSpan* PhaseTimeline::find(std::string_view name) const noexcept {
  for (const TraceSpan& span : spans_) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

double PhaseTimeline::total_s(std::string_view name) const noexcept {
  double total = 0.0;
  for (const TraceSpan& span : spans_) {
    if (span.name == name) total += span.duration_s();
  }
  return total;
}

JsonValue PhaseTimeline::to_json() const {
  JsonValue out{JsonArray{}};
  for (const TraceSpan& span : spans_) {
    JsonValue entry;
    entry.set("name", span.name);
    entry.set("t0", span.t0_ns);
    entry.set("t1", span.t1_ns);
    entry.set("depth", span.depth);
    out.push(std::move(entry));
  }
  return out;
}

}  // namespace ldke::obs
