#pragma once
/// \file baseline_replay.hpp
/// Graph-level scenario replay for the §III baseline key schemes.  The
/// packet-level ScenarioEngine exercises LDKE's actual protocol; the
/// baselines are evaluated the way the paper compares them — over the
/// communication graph — but under the *same* trace: the replay expands
/// the identical Timeline, advances an identical MobilityField, and
/// folds the identical digest, so a digest match proves both replayers
/// walked the same deployment history.  Per phase it reports how much
/// of the in-range graph each scheme still secures once nodes move,
/// sleep, leave and join.

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/scheme.hpp"
#include "net/topology.hpp"
#include "obs/json.hpp"
#include "scenario/spec.hpp"

namespace ldke::scenario {

struct GraphPhaseStats {
  std::string name;
  double alive_fraction = 0.0;   ///< alive / (original + joined so far)
  double awake_fraction = 0.0;   ///< awake alive / alive, at phase end
  std::uint64_t in_range_pairs = 0;   ///< both endpoints alive and awake
  std::uint64_t secured_pairs = 0;    ///< ... and the scheme keys them
  double secured_link_fraction = 0.0;
  double mean_secured_degree = 0.0;
  std::uint64_t unkeyed_nodes = 0;  ///< joiners the scheme has no material for
};

struct GraphReplayResult {
  std::string scheme;
  std::uint64_t trace_digest = 0;  ///< must equal the engine's digest
  std::vector<GraphPhaseStats> phases;

  [[nodiscard]] obs::JsonValue to_json() const;
};

/// The deployment the packet engine's runner realizes for (spec, seed):
/// node placement is the first draw from the trial RNG, so the graph
/// replay reproduces it without constructing a runner.
[[nodiscard]] net::Topology initial_topology(const ScenarioSpec& spec,
                                             std::uint64_t seed);

/// Replays (spec, seed) against \p scheme.  setup() runs once over the
/// initial topology (predistribution happens before deployment); the
/// scheme is *not* re-keyed as the scenario unfolds — that gap is
/// exactly what the per-phase metrics measure.
[[nodiscard]] GraphReplayResult replay_scheme(const ScenarioSpec& spec,
                                              std::uint64_t seed,
                                              baselines::KeyScheme& scheme);

}  // namespace ldke::scenario
