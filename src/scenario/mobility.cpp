#include "scenario/mobility.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ldke::scenario {

MobilityField::MobilityField(const MotionConfig& config, double side,
                             std::span<const net::Vec2> initial,
                             std::uint64_t seed)
    : config_(config),
      side_(side),
      positions_(initial.begin(), initial.end()),
      rng_(seed) {
  switch (config_.model) {
    case MotionModel::kNone:
      break;
    case MotionModel::kRandomWaypoint:
      walkers_.resize(positions_.size());
      if (!walkers_.empty()) walkers_[0].frozen = true;  // base station
      break;
    case MotionModel::kGroup: {
      // Reference points are the centroids of the initial membership
      // (id mod group_count), so nobody teleports at scenario start.
      const std::size_t groups = std::max<std::size_t>(1, config_.group_count);
      group_centers_.assign(groups, net::Vec2{});
      std::vector<std::size_t> counts(groups, 0);
      group_of_.resize(positions_.size());
      member_frozen_.assign(positions_.size(), false);
      if (!member_frozen_.empty()) member_frozen_[0] = true;  // base station
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        const auto g = static_cast<std::uint32_t>(i % groups);
        group_of_[i] = g;
        group_centers_[g].x += positions_[i].x;
        group_centers_[g].y += positions_[i].y;
        ++counts[g];
      }
      for (std::size_t g = 0; g < groups; ++g) {
        if (counts[g] == 0) {
          group_centers_[g] = draw_point();
          continue;
        }
        group_centers_[g].x /= static_cast<double>(counts[g]);
        group_centers_[g].y /= static_cast<double>(counts[g]);
      }
      offsets_.resize(positions_.size());
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        const net::Vec2 c = group_centers_[group_of_[i]];
        offsets_[i] = {positions_[i].x - c.x, positions_[i].y - c.y};
      }
      walkers_.resize(groups);  // the group centers do the waypoint walk
      break;
    }
  }
}

net::Vec2 MobilityField::draw_point() {
  // Fixed draw order (x then y) keeps the stream replayable.
  const double x = rng_.uniform(0.0, side_);
  const double y = rng_.uniform(0.0, side_);
  return {x, y};
}

void MobilityField::advance_walker(std::size_t i, net::Vec2& pos, double dt) {
  Walker& w = walkers_[i];
  if (w.frozen) return;
  if (w.pause_left > 0.0) {
    w.pause_left -= dt;
    if (w.pause_left > 0.0) return;
    dt = -w.pause_left;  // spend the remainder of the epoch moving
    w.pause_left = 0.0;
    if (dt <= 0.0) return;
  }
  if (!w.has_target) {
    w.target = draw_point();
    w.speed = rng_.uniform(config_.speed_min_mps, config_.speed_max_mps);
    w.has_target = true;
  }
  const double dx = w.target.x - pos.x;
  const double dy = w.target.y - pos.y;
  const double dist = std::sqrt(dx * dx + dy * dy);
  const double step = w.speed * dt;
  if (dist <= step || dist <= 1e-12) {
    pos = w.target;
    w.has_target = false;
    w.pause_left = config_.pause_s;
    return;
  }
  pos.x += dx / dist * step;
  pos.y += dy / dist * step;
}

void MobilityField::advance(double dt) {
  // Record the per-epoch delta (exact bit compare: a walker that paused,
  // stayed frozen, or landed exactly where it stood is not a mover).
  moved_ids_.clear();
  moved_pos_.clear();
  switch (config_.model) {
    case MotionModel::kNone:
      return;
    case MotionModel::kRandomWaypoint:
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        const net::Vec2 before = positions_[i];
        advance_walker(i, positions_[i], dt);
        if (!(positions_[i] == before)) {
          moved_ids_.push_back(static_cast<net::NodeId>(i));
          moved_pos_.push_back(positions_[i]);
        }
      }
      return;
    case MotionModel::kGroup: {
      for (std::size_t g = 0; g < walkers_.size(); ++g) {
        advance_walker(g, group_centers_[g], dt);
      }
      const double jitter = config_.group_jitter_m;
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        if (member_frozen_[i]) continue;
        // Offsets random-walk with a mild pull toward the reference
        // point, so groups stay coherent without hard clamping.
        offsets_[i].x = offsets_[i].x * 0.98 + rng_.uniform(-jitter, jitter);
        offsets_[i].y = offsets_[i].y * 0.98 + rng_.uniform(-jitter, jitter);
        const net::Vec2 c = group_centers_[group_of_[i]];
        const net::Vec2 next = {std::clamp(c.x + offsets_[i].x, 0.0, side_),
                                std::clamp(c.y + offsets_[i].y, 0.0, side_)};
        if (!(next == positions_[i])) {
          positions_[i] = next;
          moved_ids_.push_back(static_cast<net::NodeId>(i));
          moved_pos_.push_back(next);
        }
      }
      return;
    }
  }
}

void MobilityField::add_node(net::Vec2 pos) {
  moved_ids_.clear();  // the delta of the previous epoch is now stale
  moved_pos_.clear();
  positions_.push_back(pos);
  switch (config_.model) {
    case MotionModel::kNone:
      break;
    case MotionModel::kRandomWaypoint:
      walkers_.emplace_back();
      break;
    case MotionModel::kGroup: {
      const auto g =
          static_cast<std::uint32_t>((positions_.size() - 1) % walkers_.size());
      group_of_.push_back(g);
      member_frozen_.push_back(false);
      const net::Vec2 c = group_centers_[g];
      offsets_.push_back({pos.x - c.x, pos.y - c.y});
      break;
    }
  }
}

void MobilityField::freeze(net::NodeId id) {
  if (id >= positions_.size()) return;
  switch (config_.model) {
    case MotionModel::kNone:
      break;
    case MotionModel::kRandomWaypoint:
      walkers_[id].frozen = true;
      break;
    case MotionModel::kGroup:
      member_frozen_[id] = true;
      break;
  }
}

std::uint64_t MobilityField::fold_digest(std::uint64_t h) const noexcept {
  for (const net::Vec2& p : positions_) {
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(p.x));
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(p.y));
  }
  return h;
}

}  // namespace ldke::scenario
