#include "scenario/baseline_replay.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "scenario/mobility.hpp"
#include "scenario/timeline.hpp"
#include "sim/time.hpp"
#include "support/rng.hpp"

namespace ldke::scenario {

namespace {

constexpr std::uint64_t kSchemeSeedTag = 0x534348454d45ULL;  // "SCHEME"

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

}  // namespace

net::Topology initial_topology(const ScenarioSpec& spec, std::uint64_t seed) {
  // Mirrors ProtocolRunner's construction: placement is the first use
  // of the trial stream Xoshiro256{seed}.
  support::Xoshiro256 rng{seed};
  return net::Topology::random_with_density(spec.nodes, spec.side_m,
                                            spec.density, rng);
}

GraphReplayResult replay_scheme(const ScenarioSpec& spec, std::uint64_t seed,
                                baselines::KeyScheme& scheme) {
  const std::string problem = spec.validate();
  if (!problem.empty()) {
    throw std::invalid_argument("replay_scheme: invalid spec: " + problem);
  }

  net::Topology topo = initial_topology(spec, seed);
  support::Xoshiro256 scheme_rng{support::derive_seed(seed, kSchemeSeedTag)};
  scheme.setup(topo, scheme_rng);

  const Timeline timeline = Timeline::expand(spec, seed);
  MobilityField mobility{spec.motion, spec.side_m, topo.positions(),
                         support::derive_seed(seed, kMotionSeedTag)};
  std::uint64_t digest = timeline.digest();
  digest = mobility.fold_digest(digest);

  const std::size_t original = spec.nodes;
  const double range =
      net::Topology::range_for_density(spec.nodes, spec.side_m, spec.density);
  std::vector<bool> alive(original, true);
  std::vector<bool> asleep(original, false);

  GraphReplayResult result;
  result.scheme = std::string(scheme.name());

  const std::int64_t epoch_ns =
      sim::SimTime::from_seconds(spec.motion.epoch_s).ns();

  for (std::uint32_t pi = 0; pi < spec.phases.size(); ++pi) {
    const PhaseSpec& phase = spec.phases[pi];
    const std::int64_t start_ns = timeline.phase_start_ns(pi);
    const std::int64_t end_ns = timeline.phase_end_ns(pi);
    const std::span<const Event> events = timeline.phase_events(pi);
    std::size_t next_event = 0;

    auto apply_events_until = [&](std::int64_t t_ns) {
      // The engine schedules timeline events before the motion driver,
      // so at a shared timestamp events run first: consume t <= t_ns.
      for (; next_event < events.size() && events[next_event].t_ns <= t_ns;
           ++next_event) {
        const Event& ev = events[next_event];
        switch (ev.kind) {
          case EventKind::kLeave:
          case EventKind::kFail:
            if (ev.node < alive.size() && alive[ev.node]) {
              alive[ev.node] = false;
              mobility.freeze(ev.node);
            }
            break;
          case EventKind::kJoin:
            if (ev.node >= alive.size()) {
              alive.resize(ev.node + 1, false);
              asleep.resize(ev.node + 1, false);
            }
            alive[ev.node] = true;
            mobility.add_node(ev.pos);
            break;
          case EventKind::kSleep:
            if (ev.node < alive.size() && alive[ev.node]) {
              asleep[ev.node] = true;
            }
            break;
          case EventKind::kWake:
            if (ev.node < asleep.size()) asleep[ev.node] = false;
            break;
          case EventKind::kPartition:
          case EventKind::kHeal:
            // Scripted walls do not change the key graph, and phases
            // end healed; they contribute to the digest only.
            break;
        }
      }
    };

    if (phase.mobility && spec.motion.model != MotionModel::kNone) {
      const std::int64_t epochs = (end_ns - start_ns) / epoch_ns;
      for (std::int64_t k = 1; k <= epochs; ++k) {
        apply_events_until(start_ns + k * epoch_ns);
        mobility.advance(spec.motion.epoch_s);
        digest = mobility.fold_digest(digest);
      }
    }
    apply_events_until(end_ns - 1);  // events are strictly inside the phase

    // Phase-end census *before* the boundary wake-up, so duty cycling
    // shows up as unavailable links the way it costs deliveries in the
    // packet engine.
    GraphPhaseStats ps;
    ps.name = phase.name;
    const std::span<const net::Vec2> positions = mobility.positions();
    std::size_t alive_count = 0;
    std::size_t awake_count = 0;
    for (std::size_t id = 0; id < alive.size(); ++id) {
      if (!alive[id]) continue;
      ++alive_count;
      if (!asleep[id]) ++awake_count;
    }
    ps.alive_fraction = alive.empty() ? 0.0
                                      : static_cast<double>(alive_count) /
                                            static_cast<double>(alive.size());
    ps.awake_fraction = alive_count == 0
                            ? 0.0
                            : static_cast<double>(awake_count) /
                                  static_cast<double>(alive_count);

    std::vector<bool> unkeyed_seen(alive.size(), false);
    net::Topology snapshot = net::Topology::from_positions(
        std::vector<net::Vec2>(positions.begin(), positions.end()), range);
    for (net::NodeId u = 0; u < snapshot.size(); ++u) {
      if (!alive[u] || asleep[u]) continue;
      for (const net::NodeId v : snapshot.neighbors(u)) {
        if (v <= u) continue;
        if (!alive[v] || asleep[v]) continue;
        ++ps.in_range_pairs;
        if (u >= original || v >= original) {
          // The scheme predistributed before deployment; joiners carry
          // no material from it.
          if (u >= original && !unkeyed_seen[u]) {
            unkeyed_seen[u] = true;
            ++ps.unkeyed_nodes;
          }
          if (v >= original && !unkeyed_seen[v]) {
            unkeyed_seen[v] = true;
            ++ps.unkeyed_nodes;
          }
          continue;
        }
        if (scheme.link_secured(u, v)) ++ps.secured_pairs;
      }
    }
    ps.secured_link_fraction =
        ps.in_range_pairs == 0
            ? 0.0
            : static_cast<double>(ps.secured_pairs) /
                  static_cast<double>(ps.in_range_pairs);
    ps.mean_secured_degree =
        awake_count == 0 ? 0.0
                         : 2.0 * static_cast<double>(ps.secured_pairs) /
                               static_cast<double>(awake_count);
    result.phases.push_back(std::move(ps));

    // Phase boundary: everyone awake, wall healed (mirrors the engine).
    std::fill(asleep.begin(), asleep.end(), false);
  }

  result.trace_digest = digest;
  return result;
}

obs::JsonValue GraphReplayResult::to_json() const {
  using obs::JsonValue;
  JsonValue doc;
  doc.set("scheme", scheme);
  doc.set("trace_digest", hex64(trace_digest));
  JsonValue phase_array;
  for (const GraphPhaseStats& ps : phases) {
    JsonValue p;
    p.set("name", ps.name);
    p.set("alive_fraction", ps.alive_fraction);
    p.set("awake_fraction", ps.awake_fraction);
    p.set("in_range_pairs", ps.in_range_pairs);
    p.set("secured_pairs", ps.secured_pairs);
    p.set("secured_link_fraction", ps.secured_link_fraction);
    p.set("mean_secured_degree", ps.mean_secured_degree);
    p.set("unkeyed_nodes", ps.unkeyed_nodes);
    phase_array.push(std::move(p));
  }
  doc.set("phases", std::move(phase_array));
  return doc;
}

}  // namespace ldke::scenario
