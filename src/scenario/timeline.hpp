#pragma once
/// \file timeline.hpp
/// Pre-expanded, fully deterministic event timeline for a scenario.
/// All randomness (Poisson churn arrivals, victim selection, join
/// positions, duty offsets) is consumed at expansion time from RNG
/// streams derived from (seed, tag), never from the protocol RNG — so
/// the packet-level engine and the graph-level baseline replay can each
/// expand the same (spec, seed) and walk byte-identical traces.
///
/// Times are integral nanoseconds (the SimTime domain).  Phase starts
/// accumulate as exact integer sums of per-phase durations, so an event
/// ordered against a motion epoch in one replayer orders identically in
/// the other.

#include <cstdint>
#include <span>
#include <vector>

#include "net/node.hpp"
#include "net/vec2.hpp"
#include "scenario/spec.hpp"

namespace ldke::scenario {

enum class EventKind : std::uint8_t {
  kLeave,      ///< graceful departure (radio off, slot retired)
  kFail,       ///< crash failure (identical mechanics, separate count)
  kJoin,       ///< §IV-E new-identity deployment at a drawn position
  kSleep,      ///< duty cycle: radio off
  kWake,       ///< duty cycle: radio on + hash-epoch catch-up
  kPartition,  ///< scripted wall at x = pos.x
  kHeal,       ///< scripted partition removal
};

struct Event {
  std::int64_t t_ns = 0;   ///< scenario-absolute time
  EventKind kind = EventKind::kLeave;
  net::NodeId node = net::kNoNode;  ///< leave/fail/sleep/wake target, join id
  net::Vec2 pos{};         ///< join position; partition wall in pos.x
  std::uint32_t phase = 0;
};

class Timeline {
 public:
  /// Expands \p spec under \p seed.  The spec must validate() clean.
  [[nodiscard]] static Timeline expand(const ScenarioSpec& spec,
                                       std::uint64_t seed);

  [[nodiscard]] std::span<const Event> events() const noexcept {
    return events_;
  }
  /// The contiguous slice of events inside phase \p phase.
  [[nodiscard]] std::span<const Event> phase_events(
      std::uint32_t phase) const noexcept;

  /// Scenario-absolute start of phase \p phase, exact integer ns.
  [[nodiscard]] std::int64_t phase_start_ns(std::uint32_t phase) const {
    return phase_starts_ns_[phase];
  }
  [[nodiscard]] std::int64_t phase_end_ns(std::uint32_t phase) const {
    return phase_starts_ns_[phase + 1];
  }

  /// FNV-1a digest over the canonical event encoding.  Seeds the trace
  /// digest both replayers then fold position epochs into.
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

  [[nodiscard]] std::size_t joins() const noexcept { return joins_; }
  [[nodiscard]] std::size_t leaves() const noexcept { return leaves_; }
  [[nodiscard]] std::size_t fails() const noexcept { return fails_; }
  /// Joined nodes get ids first_join_id(), first_join_id()+1, ... in
  /// event order (matching ProtocolRunner::deploy_new_node assignment).
  [[nodiscard]] net::NodeId first_join_id() const noexcept {
    return first_join_id_;
  }

 private:
  std::vector<Event> events_;
  std::vector<std::int64_t> phase_starts_ns_;  // phases + 1 entries
  std::uint64_t digest_ = 0;
  std::size_t joins_ = 0;
  std::size_t leaves_ = 0;
  std::size_t fails_ = 0;
  net::NodeId first_join_id_ = 0;
};

}  // namespace ldke::scenario
