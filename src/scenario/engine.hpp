#pragma once
/// \file engine.hpp
/// Packet-level scenario execution: drives a ProtocolRunner deployment
/// through the phases of a ScenarioSpec — mobility epochs rebuilding
/// the CSR neighbor lists, Poisson churn (mark-gone departures and
/// §IV-E joins), sleep/wake duty cycling behind the radio gates, and
/// scripted partition walls — while a DataPlaneEngine generates DATA
/// traffic in every phase.  All scenario randomness comes from the
/// pre-expanded Timeline and a dedicated MobilityField stream, so two
/// runs of the same (spec, seed) produce bit-identical ScenarioStats,
/// and the graph-level baseline replay reproduces the same trace digest.

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataplane.hpp"
#include "core/health_probe.hpp"
#include "core/runner.hpp"
#include "obs/audit.hpp"
#include "obs/health_accum.hpp"
#include "obs/json.hpp"
#include "scenario/mobility.hpp"
#include "scenario/spec.hpp"
#include "scenario/timeline.hpp"

namespace ldke::scenario {

struct PhaseStats {
  std::string name;
  double start_s = 0.0;  ///< scenario-relative phase window
  double end_s = 0.0;

  // Data plane over the phase window.
  std::uint64_t attempts = 0;    ///< origination slots visited
  std::uint64_t originated = 0;  ///< readings actually sent
  std::uint64_t delivered = 0;   ///< accepted at the base station
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  std::uint64_t dropped_gone = 0;       ///< receiver asleep/departed
  std::uint64_t dropped_partition = 0;  ///< blocked by the scripted wall
  std::uint64_t tx_gated = 0;           ///< sender radio off at transmit

  // Dynamics executed in the phase.
  std::uint64_t motion_epochs = 0;
  std::uint64_t joins = 0;
  std::uint64_t join_successes = 0;  ///< joiners that reached kMember
  std::uint64_t leaves = 0;
  std::uint64_t fails = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t wakes = 0;
  std::uint64_t forced_wakes = 0;  ///< woken by the phase boundary
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;
  std::uint64_t reclustered = 0;  ///< 1 if recluster_after ran

  // Key freshness / cluster health at phase end.
  std::uint64_t refresh_rounds = 0;    ///< §IV-C hash refreshes in phase
  std::uint64_t catch_up_epochs = 0;   ///< refreshes replayed by wakers
  double hash_epoch_lag_end = 0.0;     ///< mean missed refreshes, active nodes
  std::uint64_t orphans_end = 0;       ///< active nodes without a cluster key
  double orphan_node_s = 0.0;          ///< orphan-seconds (epoch-sampled)
  std::uint64_t heads_end = 0;         ///< active cluster heads
  double mean_degree_end = 0.0;        ///< topology mean degree

  [[nodiscard]] double delivery_ratio() const noexcept {
    return originated == 0
               ? 0.0
               : static_cast<double>(delivered) /
                     static_cast<double>(originated);
  }
};

struct ScenarioStats {
  std::string name;
  std::uint64_t seed = 0;
  std::uint64_t trace_digest = 0;  ///< timeline + per-epoch positions
  double duration_s = 0.0;
  std::vector<PhaseStats> phases;

  std::uint64_t originated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_gone = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t tx_gated = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t fails = 0;
  std::uint64_t reclusters = 0;

  [[nodiscard]] obs::JsonValue to_json() const;
};

class ScenarioEngine {
 public:
  /// How mobility epochs maintain the topology.  kIncremental (the
  /// default) patches only what moved via Topology::apply_displacements;
  /// kFullRebuild is the from-scratch reference the property tests and
  /// benchmarks compare against.  Both produce bit-identical traces.
  enum class TopologyMaintenance { kIncremental, kFullRebuild };

  /// How phase-boundary HealthSamples are produced.  kIncremental reads
  /// the audit-fed obs::HealthAccumulator (O(N) worst case);
  /// kFullProbe runs the O(N+E) core::probe_health reference.
  enum class HealthMaintenance { kIncremental, kFullProbe };

  /// \p runner must be freshly constructed from make_runner_config():
  /// the engine owns the full lifecycle (key setup, routing, phases).
  /// Throws if the runner config diverges from the spec or carries a
  /// sharded kernel (scenario events mutate cross-lane node state).
  ScenarioEngine(core::ProtocolRunner& runner, ScenarioSpec spec);
  ~ScenarioEngine();
  ScenarioEngine(const ScenarioEngine&) = delete;
  ScenarioEngine& operator=(const ScenarioEngine&) = delete;

  /// Select the maintenance regimes before run().  Incremental health
  /// needs the topology's edge diffs, so kFullRebuild topology forces
  /// kFullProbe health.
  void set_topology_maintenance(TopologyMaintenance mode) noexcept {
    topo_mode_ = mode;
  }
  void set_health_maintenance(HealthMaintenance mode) noexcept {
    health_mode_ = mode;
  }
  /// Cross-check mode: every incremental HealthSample is verified
  /// field-by-field against the full-recompute probe; a mismatch throws.
  void set_health_cross_check(bool on) noexcept { health_cross_check_ = on; }

  /// Deployment config matching \p spec, so the graph-level replay can
  /// reproduce the node placement from the same seed.
  [[nodiscard]] static core::RunnerConfig make_runner_config(
      const ScenarioSpec& spec, std::uint64_t seed);

  ScenarioStats run();

  [[nodiscard]] const ScenarioStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Timeline& timeline() const noexcept { return timeline_; }
  /// One HealthSample per phase, taken at the phase boundary (after the
  /// forced wake-up and heal, before any recluster round).  The delivery
  /// window covers envelopes originated inside the phase.
  [[nodiscard]] const std::vector<obs::HealthSample>& health() const noexcept {
    return health_;
  }

 private:
  /// Adapts net::Topology to the obs-layer NeighborSource interface
  /// (obs cannot depend on net).
  class TopologySource : public obs::HealthAccumulator::NeighborSource {
   public:
    explicit TopologySource(const net::Topology& topo) : topo_(topo) {}
    [[nodiscard]] std::span<const std::uint32_t> neighbors_of(
        std::uint32_t id) const override {
      return topo_.neighbors(id);
    }

   private:
    const net::Topology& topo_;
  };

  void apply_event(const Event& ev, PhaseStats& ps);
  void schedule_motion_epochs(sim::SimTime phase_end, double epoch_s,
                              PhaseStats& ps);
  void finish_phase(std::uint32_t pi, PhaseStats& ps,
                    const core::DataPlaneStats& dp_stats,
                    std::int64_t phase_start_sim_ns);
  [[nodiscard]] std::uint32_t global_hash_epoch() const noexcept;
  /// Pushes every node's ground-truth key/epoch/radio state into the
  /// accumulator (setup and recluster boundaries, where key state moves
  /// without audit coverage).
  void resync_health();
  [[nodiscard]] obs::HealthSample sample_health(
      const std::string& phase_name, std::int64_t phase_start_sim_ns);
  void detach_health_listener() noexcept;

  core::ProtocolRunner& runner_;
  ScenarioSpec spec_;
  Timeline timeline_;
  MobilityField mobility_;
  TopologySource topo_source_;
  obs::HealthAccumulator accum_;
  ScenarioStats stats_;
  std::vector<obs::HealthSample> health_;
  std::uint64_t digest_ = 0;
  std::uint32_t hash_epochs_done_ = 0;  ///< refresh rounds before this phase
  const core::DataPlaneEngine* current_dp_ = nullptr;
  std::vector<net::NodeId> phase_join_ids_;
  TopologyMaintenance topo_mode_ = TopologyMaintenance::kIncremental;
  HealthMaintenance health_mode_ = HealthMaintenance::kIncremental;
  bool health_cross_check_ = false;
  bool accum_live_ = false;  ///< listener installed for the current run
  std::vector<net::EdgeChange> edge_diff_;
};

}  // namespace ldke::scenario
