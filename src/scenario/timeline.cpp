#include "scenario/timeline.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "scenario/mobility.hpp"  // fnv1a64 / kFnvOffsetBasis
#include "sim/time.hpp"
#include "support/rng.hpp"

namespace ldke::scenario {

namespace {

constexpr std::uint64_t kChurnSeedTag = 0x434855524eULL;  // "CHURN"
constexpr std::uint64_t kDutySeedTag = 0x44555459ULL;     // "DUTY"

}  // namespace

Timeline Timeline::expand(const ScenarioSpec& spec, std::uint64_t seed) {
  const std::string problem = spec.validate();
  if (!problem.empty()) {
    throw std::invalid_argument("Timeline::expand: invalid spec: " + problem);
  }
  Timeline tl;
  tl.first_join_id_ = static_cast<net::NodeId>(spec.nodes);

  // Exact integer phase boundaries, shared with the engine's sim clock.
  tl.phase_starts_ns_.push_back(0);
  for (const PhaseSpec& phase : spec.phases) {
    tl.phase_starts_ns_.push_back(
        tl.phase_starts_ns_.back() +
        sim::SimTime::from_seconds(phase.duration_s).ns());
  }

  // Alive set for churn victim selection: every original node except
  // the base station, plus joiners as they arrive.  Maintained in the
  // merged time order of the churn events, so selection is a pure
  // function of (spec, seed).
  std::vector<net::NodeId> alive;
  alive.reserve(spec.nodes);
  for (net::NodeId id = 1; id < spec.nodes; ++id) alive.push_back(id);
  net::NodeId next_join_id = tl.first_join_id_;

  std::vector<std::uint32_t> gen_seq;  // insertion order tiebreak
  auto push = [&tl, &gen_seq](Event ev) {
    tl.events_.push_back(ev);
    gen_seq.push_back(static_cast<std::uint32_t>(gen_seq.size()));
  };

  for (std::uint32_t pi = 0; pi < spec.phases.size(); ++pi) {
    const PhaseSpec& phase = spec.phases[pi];
    const std::int64_t start_ns = tl.phase_starts_ns_[pi];
    const std::int64_t end_ns = tl.phase_starts_ns_[pi + 1];
    const std::size_t phase_first = tl.events_.size();

    for (const ScriptedEvent& ev : phase.events) {
      Event out;
      out.t_ns = start_ns + sim::SimTime::from_seconds(ev.at_s).ns();
      out.kind = ev.kind == ScriptedEvent::Kind::kPartition
                     ? EventKind::kPartition
                     : EventKind::kHeal;
      out.pos = {ev.x_m, 0.0};
      out.phase = pi;
      push(out);
    }

    if (phase.churn) {
      support::Xoshiro256 churn_rng{
          support::derive_seed(seed, kChurnSeedTag ^ (pi * 0x9e3779b9ULL))};
      // Arrival times first (stream order: leave, fail, join), victims
      // and positions second in merged time order — so two replayers
      // agree even when streams interleave.
      const struct {
        double rate;
        EventKind kind;
      } streams[] = {{spec.churn.leave_rate_hz, EventKind::kLeave},
                     {spec.churn.fail_rate_hz, EventKind::kFail},
                     {spec.churn.join_rate_hz, EventKind::kJoin}};
      for (const auto& stream : streams) {
        if (stream.rate <= 0.0) continue;
        double t_rel = 0.0;
        for (;;) {
          t_rel += churn_rng.exponential(stream.rate);
          const std::int64_t t_ns =
              start_ns + sim::SimTime::from_seconds(t_rel).ns();
          if (t_ns >= end_ns) break;
          Event out;
          out.t_ns = t_ns;
          out.kind = stream.kind;
          out.phase = pi;
          push(out);
        }
      }
      // Merge this phase's churn events by time and assign targets.
      std::vector<std::size_t> order;
      for (std::size_t i = phase_first; i < tl.events_.size(); ++i) {
        const EventKind k = tl.events_[i].kind;
        if (k == EventKind::kLeave || k == EventKind::kFail ||
            k == EventKind::kJoin) {
          order.push_back(i);
        }
      }
      std::sort(order.begin(), order.end(),
                [&tl, &gen_seq](std::size_t a, std::size_t b) {
                  const Event& ea = tl.events_[a];
                  const Event& eb = tl.events_[b];
                  if (ea.t_ns != eb.t_ns) return ea.t_ns < eb.t_ns;
                  if (ea.kind != eb.kind) return ea.kind < eb.kind;
                  return gen_seq[a] < gen_seq[b];
                });
      for (const std::size_t i : order) {
        Event& ev = tl.events_[i];
        if (ev.kind == EventKind::kJoin) {
          ev.node = next_join_id++;
          const double x = churn_rng.uniform(0.0, spec.side_m);
          const double y = churn_rng.uniform(0.0, spec.side_m);
          ev.pos = {x, y};
          alive.push_back(ev.node);  // ids ascend, so stays sorted
          ++tl.joins_;
          continue;
        }
        if (alive.empty()) {
          ev.kind = EventKind::kHeal;  // degrade to a no-op; never in
          ev.t_ns = end_ns - 1;        // practice (network emptied out)
          continue;
        }
        const std::size_t pick = static_cast<std::size_t>(
            churn_rng.uniform_u64(static_cast<std::uint64_t>(alive.size())));
        ev.node = alive[pick];
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
        if (ev.kind == EventKind::kLeave) {
          ++tl.leaves_;
        } else {
          ++tl.fails_;
        }
      }
    }

    if (phase.duty && spec.duty.active_fraction < 1.0) {
      const std::int64_t period_ns =
          sim::SimTime::from_seconds(spec.duty.period_s).ns();
      const auto on_ns = static_cast<std::int64_t>(
          spec.duty.active_fraction * static_cast<double>(period_ns));
      // Original sensors only (joiner lifetimes are churn-managed); the
      // base station never sleeps.  Gone nodes still get events — both
      // replayers treat sleep/wake on a departed node as a no-op.
      for (net::NodeId id = 1; id < spec.nodes; ++id) {
        const std::int64_t offset_ns = static_cast<std::int64_t>(
            support::derive_seed(seed, kDutySeedTag ^ id) %
            static_cast<std::uint64_t>(period_ns));
        for (std::int64_t anchor = start_ns + offset_ns;; anchor += period_ns) {
          const std::int64_t sleep_ns = anchor + on_ns;
          const std::int64_t wake_ns = anchor + period_ns;
          if (sleep_ns >= end_ns) break;
          Event s;
          s.t_ns = sleep_ns;
          s.kind = EventKind::kSleep;
          s.node = id;
          s.phase = pi;
          push(s);
          if (wake_ns >= end_ns) break;  // phase end forces the wake
          Event w;
          w.t_ns = wake_ns;
          w.kind = EventKind::kWake;
          w.node = id;
          w.phase = pi;
          push(w);
        }
      }
    }
  }

  // Global canonical order (phases are disjoint windows, so this keeps
  // each phase's slice contiguous).
  std::vector<std::size_t> order(tl.events_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&tl, &gen_seq](std::size_t a, std::size_t b) {
              const Event& ea = tl.events_[a];
              const Event& eb = tl.events_[b];
              if (ea.t_ns != eb.t_ns) return ea.t_ns < eb.t_ns;
              if (ea.kind != eb.kind) return ea.kind < eb.kind;
              if (ea.node != eb.node) return ea.node < eb.node;
              return gen_seq[a] < gen_seq[b];
            });
  std::vector<Event> sorted;
  sorted.reserve(tl.events_.size());
  for (const std::size_t i : order) sorted.push_back(tl.events_[i]);
  tl.events_ = std::move(sorted);

  std::uint64_t h = kFnvOffsetBasis;
  for (const Event& ev : tl.events_) {
    h = fnv1a64(h, static_cast<std::uint64_t>(ev.t_ns));
    h = fnv1a64(h, static_cast<std::uint64_t>(ev.kind));
    h = fnv1a64(h, ev.node);
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(ev.pos.x));
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(ev.pos.y));
  }
  tl.digest_ = h;
  return tl;
}

std::span<const Event> Timeline::phase_events(
    std::uint32_t phase) const noexcept {
  const auto begin = std::find_if(
      events_.begin(), events_.end(),
      [phase](const Event& ev) { return ev.phase == phase; });
  auto end = begin;
  while (end != events_.end() && end->phase == phase) ++end;
  return {begin == events_.end() ? nullptr : &*begin,
          static_cast<std::size_t>(end - begin)};
}

}  // namespace ldke::scenario
