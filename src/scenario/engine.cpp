#include "scenario/engine.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "support/rng.hpp"

namespace ldke::scenario {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

}  // namespace

core::RunnerConfig ScenarioEngine::make_runner_config(const ScenarioSpec& spec,
                                                      std::uint64_t seed) {
  core::RunnerConfig config;
  config.node_count = spec.nodes;
  config.density = spec.density;
  config.side_m = spec.side_m;
  config.seed = seed;
  config.with_base_station = true;
  return config;
}

ScenarioEngine::ScenarioEngine(core::ProtocolRunner& runner, ScenarioSpec spec)
    : runner_(runner),
      spec_(std::move(spec)),
      timeline_(Timeline::expand(spec_, runner.config().seed)),
      mobility_(spec_.motion, spec_.side_m,
                runner.network().topology().positions(),
                support::derive_seed(runner.config().seed, kMotionSeedTag)),
      topo_source_(runner.network().topology()),
      accum_(topo_source_) {
  const std::string problem = spec_.validate();
  if (!problem.empty()) {
    throw std::invalid_argument("ScenarioEngine: invalid spec: " + problem);
  }
  if (runner_.config().node_count != spec_.nodes ||
      runner_.config().side_m != spec_.side_m ||
      runner_.config().density != spec_.density ||
      !runner_.config().with_base_station) {
    throw std::invalid_argument(
        "ScenarioEngine: runner config does not match the spec — build the "
        "runner from ScenarioEngine::make_runner_config()");
  }
  // Fail fast: a sharded kernel could only throw mid-run before, after
  // setup already burned real work.
  if (runner_.sim().kernel() != nullptr) {
    throw std::invalid_argument(
        "ScenarioEngine requires the serial event loop (kernel lanes == 1): "
        "scenario events mutate node state across the whole deployment");
  }
}

ScenarioEngine::~ScenarioEngine() { detach_health_listener(); }

void ScenarioEngine::detach_health_listener() noexcept {
  if (!accum_live_) return;
  if (runner_.network().audit_listener() == &accum_) {
    runner_.network().set_audit_listener(nullptr);
  }
  accum_live_ = false;
}

void ScenarioEngine::resync_health() {
  const net::Network& net = runner_.network();
  const std::size_t n = runner_.node_count();
  accum_.begin_resync(n);
  std::vector<std::uint32_t> cids;
  for (net::NodeId id = 0; id < n; ++id) {
    const core::SensorNode& node = runner_.node(id);
    cids.clear();
    for (const auto& [cid, key] : node.keys().all()) cids.push_back(cid);
    std::sort(cids.begin(), cids.end());
    accum_.resync_node(id, net.is_active(id), node.keys().has_own(),
                       node.hash_epoch(), cids);
  }
  accum_.end_resync();
}

std::uint32_t ScenarioEngine::global_hash_epoch() const noexcept {
  const auto live =
      current_dp_ != nullptr
          ? static_cast<std::uint32_t>(current_dp_->stats().refresh_rounds)
          : 0U;
  return hash_epochs_done_ + live;
}

void ScenarioEngine::apply_event(const Event& ev, PhaseStats& ps) {
  net::Network& net = runner_.network();
  switch (ev.kind) {
    case EventKind::kLeave:
    case EventKind::kFail:
      if (net.radio_state(ev.node) == net::RadioState::kGone) break;
      net.mark_gone(ev.node);
      mobility_.freeze(ev.node);
      if (ev.kind == EventKind::kLeave) {
        net.audit(obs::AuditKind::kNodeLeft, ev.node);
        ++ps.leaves;
      } else {
        net.audit(obs::AuditKind::kNodeFailed, ev.node);
        ++ps.fails;
      }
      break;
    case EventKind::kJoin: {
      core::SensorNode& joined = runner_.deploy_new_node(ev.pos);
      if (joined.id() != ev.node) {
        throw std::logic_error(
            "ScenarioEngine: join id diverged from the timeline");
      }
      mobility_.add_node(ev.pos);
      if (accum_live_) accum_.on_node_added(ev.node);
      phase_join_ids_.push_back(ev.node);
      ++ps.joins;
      break;
    }
    case EventKind::kSleep:
      if (net.radio_state(ev.node) != net::RadioState::kActive) break;
      net.set_asleep(ev.node, true);
      net.audit(obs::AuditKind::kSleep, ev.node);
      ++ps.sleeps;
      break;
    case EventKind::kWake: {
      if (net.radio_state(ev.node) != net::RadioState::kAsleep) break;
      net.set_asleep(ev.node, false);
      const std::uint32_t caught =
          runner_.node(ev.node).catch_up_hash_epoch(global_hash_epoch());
      ps.catch_up_epochs += caught;
      net.audit(obs::AuditKind::kWake, ev.node, obs::kAuditNoSubject, caught);
      ++ps.wakes;
      break;
    }
    case EventKind::kPartition:
      net.set_partition_x(ev.pos.x);
      net.audit(obs::AuditKind::kPartition, runner_.base_station()->id(),
                obs::kAuditNoSubject,
                static_cast<std::uint64_t>(ev.pos.x * 1e3));  // wall x in mm
      ++ps.partitions;
      break;
    case EventKind::kHeal:
      net.clear_partition();
      net.audit(obs::AuditKind::kHeal, runner_.base_station()->id());
      ++ps.heals;
      break;
  }
}

void ScenarioEngine::schedule_motion_epochs(sim::SimTime phase_end,
                                            double epoch_s, PhaseStats& ps) {
  sim::Simulator& sim = runner_.sim();
  const sim::SimTime next = sim.now() + sim::SimTime::from_seconds(epoch_s);
  if (next > phase_end) return;
  sim.schedule_at(next, [this, phase_end, epoch_s, &ps] {
    mobility_.advance(epoch_s);
    if (topo_mode_ == TopologyMaintenance::kIncremental) {
      // Patch only what moved; the edge diff feeds the incremental
      // health accounting so nothing ever rescans the whole graph.
      const MobilityField::Displacements delta = mobility_.displacements();
      edge_diff_.clear();
      runner_.network().apply_displacements(
          delta.ids, delta.positions, accum_live_ ? &edge_diff_ : nullptr);
      for (const net::EdgeChange& e : edge_diff_) {
        accum_.on_edge(e.a, e.b, e.added);
      }
    } else {
      runner_.network().update_positions(mobility_.positions());
    }
    digest_ = mobility_.fold_digest(digest_);
    ++ps.motion_epochs;
    // Orphan-seconds sampled at the epoch cadence: nodes whose cluster
    // key vanished (eviction, or a joiner that never completed).
    std::uint64_t orphans = 0;
    const net::Network& net = runner_.network();
    for (const auto& node : runner_.nodes()) {
      if (!net.is_active(node->id())) continue;
      if (!node->keys().has_own()) ++orphans;
    }
    ps.orphan_node_s += static_cast<double>(orphans) * epoch_s;
    schedule_motion_epochs(phase_end, epoch_s, ps);
  });
}

void ScenarioEngine::finish_phase(std::uint32_t pi, PhaseStats& ps,
                                  const core::DataPlaneStats& dp_stats,
                                  std::int64_t phase_start_sim_ns) {
  net::Network& net = runner_.network();
  const PhaseSpec& phase = spec_.phases[pi];

  // Phases end with every surviving node awake (the next phase — or the
  // §IV-C recluster — starts from a listening deployment) ...
  for (const auto& node : runner_.nodes()) {
    if (net.radio_state(node->id()) != net::RadioState::kAsleep) continue;
    net.set_asleep(node->id(), false);
    const std::uint32_t caught =
        node->catch_up_hash_epoch(global_hash_epoch());
    ps.catch_up_epochs += caught;
    net.audit(obs::AuditKind::kWake, node->id(), obs::kAuditNoSubject, caught);
    ++ps.forced_wakes;
  }
  // ... and with the scripted wall healed.
  if (net.partition_x()) {
    net.clear_partition();
    net.audit(obs::AuditKind::kHeal, runner_.base_station()->id());
    ++ps.heals;
  }

  ps.attempts = dp_stats.attempts;
  ps.originated = dp_stats.originated;
  ps.refresh_rounds = dp_stats.refresh_rounds;

  const auto window = runner_.deliveries().window_stats(
      phase_start_sim_ns, runner_.sim().now().ns());
  ps.delivered = window.delivered;
  ps.latency_p50_ms = window.p50_s * 1e3;
  ps.latency_p95_ms = window.p95_s * 1e3;

  for (const net::NodeId id : phase_join_ids_) {
    if (runner_.node(id).role() == core::Role::kMember) ++ps.join_successes;
  }

  const std::uint32_t global = hash_epochs_done_;
  std::uint64_t orphans = 0;
  std::uint64_t heads = 0;
  double lag = 0.0;
  std::size_t active = 0;
  for (const auto& node : runner_.nodes()) {
    if (!net.is_active(node->id())) continue;
    ++active;
    if (node->role() == core::Role::kHead) ++heads;
    if (!node->keys().has_own()) ++orphans;
    if (global > node->hash_epoch()) lag += global - node->hash_epoch();
  }
  ps.orphans_end = orphans;
  ps.heads_end = heads;
  ps.hash_epoch_lag_end =
      active == 0 ? 0.0 : lag / static_cast<double>(active);
  ps.mean_degree_end = net.topology().mean_degree();
  health_.push_back(sample_health(phase.name, phase_start_sim_ns));
  if (!(phase.mobility && spec_.motion.model != MotionModel::kNone)) {
    // No epoch sampling ran: charge the end-of-phase census for the
    // whole window instead.
    ps.orphan_node_s = static_cast<double>(orphans) * phase.duration_s;
  }
}

obs::HealthSample ScenarioEngine::sample_health(
    const std::string& phase_name, std::int64_t phase_start_sim_ns) {
  const std::int64_t now_ns = runner_.sim().now().ns();
  if (!accum_live_) {
    return core::probe_health(runner_, phase_name, now_ns, phase_start_sim_ns,
                              now_ns);
  }
  obs::HealthSample s = accum_.sample();
  s.t_ns = now_ns;
  s.phase = phase_name;
  const auto window =
      runner_.deliveries().window_stats(phase_start_sim_ns, now_ns);
  s.delivered = window.delivered;
  s.latency_p50_ms = window.p50_s * 1e3;
  s.latency_p95_ms = window.p95_s * 1e3;
  if (health_cross_check_) {
    const obs::HealthSample ref = core::probe_health(
        runner_, phase_name, now_ns, phase_start_sim_ns, now_ns);
    const bool match =
        s.active_nodes == ref.active_nodes && s.live_links == ref.live_links &&
        s.secured_links == ref.secured_links &&
        s.secured_link_fraction == ref.secured_link_fraction &&
        s.key_components == ref.key_components &&
        s.largest_component == ref.largest_component &&
        s.delivered == ref.delivered && s.epoch_skew == ref.epoch_skew &&
        s.epoch_mean == ref.epoch_mean;
    if (!match) {
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "health cross-check mismatch in phase '%s': "
                    "incremental {act=%u live=%u sec=%u comp=%u big=%u "
                    "skew=%llu} vs probe {act=%u live=%u sec=%u comp=%u "
                    "big=%u skew=%llu}",
                    phase_name.c_str(), s.active_nodes, s.live_links,
                    s.secured_links, s.key_components, s.largest_component,
                    static_cast<unsigned long long>(s.epoch_skew),
                    ref.active_nodes, ref.live_links, ref.secured_links,
                    ref.key_components, ref.largest_component,
                    static_cast<unsigned long long>(ref.epoch_skew));
      throw std::logic_error(buf);
    }
  }
  return s;
}

ScenarioStats ScenarioEngine::run() {
  if (runner_.base_station() == nullptr) {
    throw std::invalid_argument(
        "ScenarioEngine needs a base station for routing and delivery");
  }

  runner_.run_key_setup();
  runner_.run_routing_setup();

  // Incremental health needs the per-epoch edge diffs, which only the
  // incremental topology path produces.
  const bool health_incremental =
      health_mode_ == HealthMaintenance::kIncremental &&
      topo_mode_ == TopologyMaintenance::kIncremental;
  detach_health_listener();
  if (health_incremental) {
    resync_health();
    runner_.network().set_audit_listener(&accum_);
    accum_live_ = true;
  }

  digest_ = timeline_.digest();
  digest_ = mobility_.fold_digest(digest_);  // initial placement

  stats_ = {};
  health_.clear();
  stats_.name = spec_.name;
  stats_.seed = runner_.config().seed;
  stats_.duration_s = spec_.total_duration_s();

  net::Network& net = runner_.network();
  sim::Simulator& sim = runner_.sim();
  double scenario_clock_s = 0.0;

  for (std::uint32_t pi = 0; pi < spec_.phases.size(); ++pi) {
    const PhaseSpec& phase = spec_.phases[pi];
    PhaseStats ps;
    ps.name = phase.name;
    ps.start_s = scenario_clock_s;
    ps.end_s = scenario_clock_s + phase.duration_s;
    phase_join_ids_.clear();

    const std::uint64_t gone0 = net.channel().dropped_gone();
    const std::uint64_t part0 = net.channel().dropped_partition();
    const std::uint64_t gated0 = net.counters().value("pkt.tx_gated");

    const std::int64_t phase_start_sim_ns = sim.now().ns();
    const sim::SimTime phase_end =
        sim.now() + sim::SimTime::from_seconds(phase.duration_s);
    const std::int64_t tl_start = timeline_.phase_start_ns(pi);
    // Timeline events first, motion driver second: at coincident
    // timestamps the scheduler runs in insertion order, and the graph
    // replay applies events before the epoch the same way.
    for (const Event& ev : timeline_.phase_events(pi)) {
      const auto at =
          sim::SimTime::from_ns(phase_start_sim_ns + (ev.t_ns - tl_start));
      sim.schedule_at(at, [this, ev, &ps] { apply_event(ev, ps); });
    }
    if (phase.mobility && spec_.motion.model != MotionModel::kNone) {
      schedule_motion_epochs(phase_end, spec_.motion.epoch_s, ps);
    }

    core::DataPlaneConfig dp_config;
    dp_config.duration_s = phase.duration_s;
    dp_config.tick_interval_s = spec_.data.tick_interval_s;
    dp_config.readings_per_tick = spec_.data.readings_per_tick;
    dp_config.reading_bytes = spec_.data.reading_bytes;
    dp_config.refresh_interval_s = spec_.data.refresh_interval_s;
    dp_config.evict_interval_s = spec_.data.evict_interval_s;
    dp_config.evict_batch = spec_.data.evict_batch;
    core::DataPlaneEngine dp{runner_, dp_config};
    current_dp_ = &dp;
    const core::DataPlaneStats dp_stats = dp.run();
    current_dp_ = nullptr;
    hash_epochs_done_ += static_cast<std::uint32_t>(dp_stats.refresh_rounds);

    finish_phase(pi, ps, dp_stats, phase_start_sim_ns);
    ps.dropped_gone = net.channel().dropped_gone() - gone0;
    ps.dropped_partition = net.channel().dropped_partition() - part0;
    ps.tx_gated = net.counters().value("pkt.tx_gated") - gated0;

    if (phase.recluster_after) {
      runner_.run_recluster_round();
      ps.reclustered = 1;
      ++stats_.reclusters;
      // The recluster commit swaps every node's key set atomically with
      // no audit coverage: re-mirror from ground truth.
      if (accum_live_) resync_health();
    }

    scenario_clock_s = ps.end_s;
    stats_.phases.push_back(std::move(ps));
  }

  for (const PhaseStats& ps : stats_.phases) {
    stats_.originated += ps.originated;
    stats_.delivered += ps.delivered;
    stats_.dropped_gone += ps.dropped_gone;
    stats_.dropped_partition += ps.dropped_partition;
    stats_.tx_gated += ps.tx_gated;
    stats_.joins += ps.joins;
    stats_.leaves += ps.leaves;
    stats_.fails += ps.fails;
  }
  stats_.trace_digest = digest_;
  detach_health_listener();
  return stats_;
}

obs::JsonValue ScenarioStats::to_json() const {
  using obs::JsonValue;
  JsonValue doc;
  doc.set("name", name);
  doc.set("seed", seed);
  doc.set("trace_digest", hex64(trace_digest));
  doc.set("duration_s", duration_s);
  doc.set("originated", originated);
  doc.set("delivered", delivered);
  doc.set("dropped_gone", dropped_gone);
  doc.set("dropped_partition", dropped_partition);
  doc.set("tx_gated", tx_gated);
  doc.set("joins", joins);
  doc.set("leaves", leaves);
  doc.set("fails", fails);
  doc.set("reclusters", reclusters);
  JsonValue phase_array;
  for (const PhaseStats& ps : phases) {
    JsonValue p;
    p.set("name", ps.name);
    p.set("start_s", ps.start_s);
    p.set("end_s", ps.end_s);
    p.set("attempts", ps.attempts);
    p.set("originated", ps.originated);
    p.set("delivered", ps.delivered);
    p.set("delivery_ratio", ps.delivery_ratio());
    p.set("latency_p50_ms", ps.latency_p50_ms);
    p.set("latency_p95_ms", ps.latency_p95_ms);
    p.set("dropped_gone", ps.dropped_gone);
    p.set("dropped_partition", ps.dropped_partition);
    p.set("tx_gated", ps.tx_gated);
    p.set("motion_epochs", ps.motion_epochs);
    p.set("joins", ps.joins);
    p.set("join_successes", ps.join_successes);
    p.set("leaves", ps.leaves);
    p.set("fails", ps.fails);
    p.set("sleeps", ps.sleeps);
    p.set("wakes", ps.wakes);
    p.set("forced_wakes", ps.forced_wakes);
    p.set("partitions", ps.partitions);
    p.set("heals", ps.heals);
    p.set("reclustered", ps.reclustered);
    p.set("refresh_rounds", ps.refresh_rounds);
    p.set("catch_up_epochs", ps.catch_up_epochs);
    p.set("hash_epoch_lag_end", ps.hash_epoch_lag_end);
    p.set("orphans_end", ps.orphans_end);
    p.set("orphan_node_s", ps.orphan_node_s);
    p.set("heads_end", ps.heads_end);
    p.set("mean_degree_end", ps.mean_degree_end);
    phase_array.push(std::move(p));
  }
  doc.set("phases", std::move(phase_array));
  return doc;
}

}  // namespace ldke::scenario
