#pragma once
/// \file mobility.hpp
/// Deterministic motion models for scenario replay.  A MobilityField
/// advances every walker in node-id order with a dedicated RNG stream,
/// so the packet-level ScenarioEngine and the graph-level baseline
/// replay — each owning their own field constructed from the same
/// (config, initial positions, seed) — produce bit-identical position
/// sequences.  Node 0 (the base station) is anchored and never moves.

#include <cstdint>
#include <span>
#include <vector>

#include "net/node.hpp"
#include "net/vec2.hpp"
#include "scenario/spec.hpp"
#include "support/rng.hpp"

namespace ldke::scenario {

/// Seed-derivation tag shared by every consumer of scenario motion.
inline constexpr std::uint64_t kMotionSeedTag = 0x4d4f54494f4eULL;  // "MOTION"

class MobilityField {
 public:
  MobilityField(const MotionConfig& config, double side,
                std::span<const net::Vec2> initial, std::uint64_t seed);

  /// Advances every live walker by \p dt seconds.  Draws from the RNG
  /// in node-id order only for walkers that need a new leg, so the
  /// stream consumption is a pure function of the motion history.
  void advance(double dt);

  /// Registers a newly joined node at \p pos (assigned the next id).
  void add_node(net::Vec2 pos);

  /// Stops a departed node where it stands; it draws nothing further.
  void freeze(net::NodeId id);

  [[nodiscard]] std::span<const net::Vec2> positions() const noexcept {
    return positions_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }

  /// SoA delta of the last advance(): the ids whose position actually
  /// changed (ascending) and their new coordinates, index-aligned.
  /// Paused, frozen, and arrived-at-target walkers do not appear — the
  /// locality the incremental Topology path exploits.  Valid until the
  /// next advance()/add_node().
  struct Displacements {
    std::span<const net::NodeId> ids;
    std::span<const net::Vec2> positions;
  };
  [[nodiscard]] Displacements displacements() const noexcept {
    return {moved_ids_, moved_pos_};
  }

  /// Folds the bit patterns of every current position into \p h
  /// (FNV-1a); used for cross-replayer trace digests.
  [[nodiscard]] std::uint64_t fold_digest(std::uint64_t h) const noexcept;

 private:
  struct Walker {
    net::Vec2 target{};
    double speed = 0.0;
    double pause_left = 0.0;
    bool has_target = false;
    bool frozen = false;
  };

  void advance_walker(std::size_t i, net::Vec2& pos, double dt);
  [[nodiscard]] net::Vec2 draw_point();

  MotionConfig config_;
  double side_;
  std::vector<net::Vec2> positions_;
  std::vector<Walker> walkers_;           // waypoint state (nodes or groups)
  std::vector<net::Vec2> group_centers_;  // kGroup only
  std::vector<net::Vec2> offsets_;        // kGroup: member offset from center
  std::vector<std::uint32_t> group_of_;   // kGroup: member -> group index
  std::vector<bool> member_frozen_;       // kGroup: departed members
  std::vector<net::NodeId> moved_ids_;    // delta of the last advance()
  std::vector<net::Vec2> moved_pos_;
  support::Xoshiro256 rng_;
};

/// FNV-1a 64-bit fold of one 64-bit word (shared digest primitive).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::uint64_t h,
                                              std::uint64_t word) noexcept {
  for (int b = 0; b < 8; ++b) {
    h ^= (word >> (8 * b)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

}  // namespace ldke::scenario
