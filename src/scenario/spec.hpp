#pragma once
/// \file spec.hpp
/// Declarative scenario descriptions for dynamic deployments: mobility,
/// churn, duty cycling and scripted partition events layered over the
/// steady-state data plane.  A ScenarioSpec is a plain serializable
/// value — the same JSON document replays bit-identically through the
/// packet-level ScenarioEngine and the graph-level baseline replay, so
/// LDKE and the §III baselines degrade under *identical* traces.
/// docs/scenarios.md documents the schema field by field.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace ldke::scenario {

/// How (and whether) nodes move between neighbor-list rebuild epochs.
enum class MotionModel : std::uint8_t {
  kNone,            ///< static deployment (motion epochs are skipped)
  kRandomWaypoint,  ///< independent waypoint walkers with pause times
  kGroup,           ///< reference-point group mobility around group centroids
};

[[nodiscard]] std::string_view to_string(MotionModel model) noexcept;
[[nodiscard]] std::optional<MotionModel> motion_model_from_string(
    std::string_view name) noexcept;

struct MotionConfig {
  MotionModel model = MotionModel::kNone;
  double epoch_s = 0.5;        ///< position update / CSR rebuild cadence
  double speed_min_mps = 1.0;  ///< waypoint leg speed, lower bound
  double speed_max_mps = 5.0;  ///< waypoint leg speed, upper bound
  double pause_s = 2.0;        ///< dwell time at each reached waypoint
  std::size_t group_count = 16;     ///< kGroup: number of groups
  double group_jitter_m = 2.0;      ///< kGroup: per-epoch member jitter
};

/// Poisson arrival rates for the three churn streams, deployment-wide.
struct ChurnConfig {
  double leave_rate_hz = 0.0;  ///< graceful departures per second
  double fail_rate_hz = 0.0;   ///< crash failures per second
  double join_rate_hz = 0.0;   ///< new-identity §IV-E joins per second
};

/// Sleep/wake duty cycling.  Each node gets a deterministic per-node
/// phase offset; it is awake for active_fraction of every period.
struct DutyConfig {
  double period_s = 2.0;
  double active_fraction = 0.8;
};

/// Data-plane knobs applied to every phase (mirrors DataPlaneConfig).
/// The default offered load (8 readings / 50 ms = 160 pkt/s) is chosen
/// to sit below the multi-hop capacity of the 19.2 kbps radio: above
/// it the network congestion-collapses and every hash refresh wipes
/// out a growing in-flight backlog, which drowns the scenario effects
/// the suite is meant to measure.
struct DataConfig {
  double tick_interval_s = 0.05;
  std::size_t readings_per_tick = 8;
  std::size_t reading_bytes = 24;
  double refresh_interval_s = 1.0;  ///< §IV-C hash refresh; 0 disables
  /// §IV-D cluster eviction cadence (0 disables).  Cycles round-robin
  /// through the non-base clusters, \p evict_batch per firing, so churn
  /// scenarios exercise the revoke → re-key convergence path.
  double evict_interval_s = 0.0;
  std::size_t evict_batch = 1;
};

/// A scripted event inside one phase, at a fixed offset from its start.
struct ScriptedEvent {
  enum class Kind : std::uint8_t { kPartition, kHeal };
  Kind kind = Kind::kPartition;
  double at_s = 0.0;  ///< offset from phase start; must be < duration_s
  double x_m = 0.0;   ///< kPartition: wall position on the x axis
};

/// One contiguous window of scenario time.  Toggles select which of the
/// spec-level generators (motion, churn, duty) are live in this window;
/// every phase ends with surviving nodes awake and partitions healed.
struct PhaseSpec {
  std::string name;
  double duration_s = 1.0;
  bool mobility = false;
  bool churn = false;
  bool duty = false;
  bool recluster_after = false;  ///< §IV-C re-clustering at phase end
  std::vector<ScriptedEvent> events;
};

struct ScenarioSpec {
  static constexpr int kSchemaVersion = 1;

  std::string name = "scenario";
  std::size_t nodes = 1000;
  double density = 10.0;
  double side_m = 1000.0;
  MotionConfig motion;
  ChurnConfig churn;
  DutyConfig duty;
  DataConfig data;
  std::vector<PhaseSpec> phases;

  [[nodiscard]] double total_duration_s() const noexcept;

  /// Empty when the spec is well formed; otherwise a human-readable
  /// description of the first problem found.
  [[nodiscard]] std::string validate() const;

  [[nodiscard]] obs::JsonValue to_json() const;
  [[nodiscard]] static std::optional<ScenarioSpec> from_json(
      const obs::JsonValue& doc);
  /// from_json over JsonValue::parse; nullopt on malformed text.
  [[nodiscard]] static std::optional<ScenarioSpec> parse(
      std::string_view text);
};

}  // namespace ldke::scenario
