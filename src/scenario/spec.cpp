#include "scenario/spec.hpp"

#include <sstream>

namespace ldke::scenario {

std::string_view to_string(MotionModel model) noexcept {
  switch (model) {
    case MotionModel::kNone:
      return "none";
    case MotionModel::kRandomWaypoint:
      return "waypoint";
    case MotionModel::kGroup:
      return "group";
  }
  return "none";
}

std::optional<MotionModel> motion_model_from_string(
    std::string_view name) noexcept {
  if (name == "none") return MotionModel::kNone;
  if (name == "waypoint") return MotionModel::kRandomWaypoint;
  if (name == "group") return MotionModel::kGroup;
  return std::nullopt;
}

double ScenarioSpec::total_duration_s() const noexcept {
  double total = 0.0;
  for (const PhaseSpec& phase : phases) total += phase.duration_s;
  return total;
}

std::string ScenarioSpec::validate() const {
  std::ostringstream err;
  if (nodes < 2) {
    err << "nodes must be >= 2 (base station plus at least one sensor)";
  } else if (density <= 0.0) {
    err << "density must be > 0";
  } else if (side_m <= 0.0) {
    err << "side_m must be > 0";
  } else if (motion.epoch_s <= 0.0) {
    err << "motion.epoch_s must be > 0";
  } else if (motion.speed_min_mps < 0.0 ||
             motion.speed_max_mps < motion.speed_min_mps) {
    err << "motion speeds must satisfy 0 <= speed_min_mps <= speed_max_mps";
  } else if (motion.pause_s < 0.0) {
    err << "motion.pause_s must be >= 0";
  } else if (motion.model == MotionModel::kGroup && motion.group_count == 0) {
    err << "motion.group_count must be >= 1 for the group model";
  } else if (churn.leave_rate_hz < 0.0 || churn.fail_rate_hz < 0.0 ||
             churn.join_rate_hz < 0.0) {
    err << "churn rates must be >= 0";
  } else if (duty.period_s <= 0.0) {
    err << "duty.period_s must be > 0";
  } else if (duty.active_fraction <= 0.0 || duty.active_fraction > 1.0) {
    err << "duty.active_fraction must be in (0, 1]";
  } else if (data.tick_interval_s <= 0.0) {
    err << "data.tick_interval_s must be > 0";
  } else if (data.reading_bytes == 0) {
    err << "data.reading_bytes must be >= 1";
  } else if (data.evict_interval_s < 0.0) {
    err << "data.evict_interval_s must be >= 0";
  } else if (data.evict_interval_s > 0.0 && data.evict_batch == 0) {
    err << "data.evict_batch must be >= 1 when eviction is on";
  } else if (phases.empty()) {
    err << "at least one phase is required";
  }
  if (!err.str().empty()) return err.str();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseSpec& phase = phases[i];
    if (phase.duration_s <= 0.0) {
      err << "phase " << i << " (" << phase.name
          << "): duration_s must be > 0";
      return err.str();
    }
    for (const ScriptedEvent& ev : phase.events) {
      if (ev.at_s < 0.0 || ev.at_s >= phase.duration_s) {
        err << "phase " << i << " (" << phase.name
            << "): event at_s must be in [0, duration_s)";
        return err.str();
      }
      if (ev.kind == ScriptedEvent::Kind::kPartition &&
          (ev.x_m <= 0.0 || ev.x_m >= side_m)) {
        err << "phase " << i << " (" << phase.name
            << "): partition x_m must be inside (0, side_m)";
        return err.str();
      }
    }
  }
  return {};
}

obs::JsonValue ScenarioSpec::to_json() const {
  using obs::JsonValue;
  JsonValue doc;
  doc.set("schema_version", kSchemaVersion);
  doc.set("name", name);
  doc.set("nodes", static_cast<std::uint64_t>(nodes));
  doc.set("density", density);
  doc.set("side_m", side_m);

  JsonValue motion_doc;
  motion_doc.set("model", to_string(motion.model));
  motion_doc.set("epoch_s", motion.epoch_s);
  motion_doc.set("speed_min_mps", motion.speed_min_mps);
  motion_doc.set("speed_max_mps", motion.speed_max_mps);
  motion_doc.set("pause_s", motion.pause_s);
  motion_doc.set("group_count", static_cast<std::uint64_t>(motion.group_count));
  motion_doc.set("group_jitter_m", motion.group_jitter_m);
  doc.set("motion", std::move(motion_doc));

  JsonValue churn_doc;
  churn_doc.set("leave_rate_hz", churn.leave_rate_hz);
  churn_doc.set("fail_rate_hz", churn.fail_rate_hz);
  churn_doc.set("join_rate_hz", churn.join_rate_hz);
  doc.set("churn", std::move(churn_doc));

  JsonValue duty_doc;
  duty_doc.set("period_s", duty.period_s);
  duty_doc.set("active_fraction", duty.active_fraction);
  doc.set("duty", std::move(duty_doc));

  JsonValue data_doc;
  data_doc.set("tick_interval_s", data.tick_interval_s);
  data_doc.set("readings_per_tick",
               static_cast<std::uint64_t>(data.readings_per_tick));
  data_doc.set("reading_bytes", static_cast<std::uint64_t>(data.reading_bytes));
  data_doc.set("refresh_interval_s", data.refresh_interval_s);
  data_doc.set("evict_interval_s", data.evict_interval_s);
  data_doc.set("evict_batch", static_cast<std::uint64_t>(data.evict_batch));
  doc.set("data", std::move(data_doc));

  JsonValue phase_array;
  for (const PhaseSpec& phase : phases) {
    JsonValue phase_doc;
    phase_doc.set("name", phase.name);
    phase_doc.set("duration_s", phase.duration_s);
    phase_doc.set("mobility", phase.mobility);
    phase_doc.set("churn", phase.churn);
    phase_doc.set("duty", phase.duty);
    phase_doc.set("recluster_after", phase.recluster_after);
    JsonValue event_array;
    for (const ScriptedEvent& ev : phase.events) {
      JsonValue ev_doc;
      ev_doc.set("kind", ev.kind == ScriptedEvent::Kind::kPartition
                             ? "partition"
                             : "heal");
      ev_doc.set("at_s", ev.at_s);
      if (ev.kind == ScriptedEvent::Kind::kPartition) ev_doc.set("x_m", ev.x_m);
      event_array.push(std::move(ev_doc));
    }
    if (!phase.events.empty()) phase_doc.set("events", std::move(event_array));
    phase_array.push(std::move(phase_doc));
  }
  doc.set("phases", std::move(phase_array));
  return doc;
}

std::optional<ScenarioSpec> ScenarioSpec::from_json(
    const obs::JsonValue& doc) {
  if (!doc.is_object()) return std::nullopt;
  if (doc.int_at("schema_version", kSchemaVersion) != kSchemaVersion) {
    return std::nullopt;
  }
  ScenarioSpec spec;
  spec.name = doc.string_at("name", spec.name);
  spec.nodes = static_cast<std::size_t>(
      doc.int_at("nodes", static_cast<std::int64_t>(spec.nodes)));
  spec.density = doc.number_at("density", spec.density);
  spec.side_m = doc.number_at("side_m", spec.side_m);

  if (const obs::JsonValue* motion_doc = doc.find("motion")) {
    const auto model =
        motion_model_from_string(motion_doc->string_at("model", "none"));
    if (!model) return std::nullopt;
    spec.motion.model = *model;
    spec.motion.epoch_s = motion_doc->number_at("epoch_s", spec.motion.epoch_s);
    spec.motion.speed_min_mps =
        motion_doc->number_at("speed_min_mps", spec.motion.speed_min_mps);
    spec.motion.speed_max_mps =
        motion_doc->number_at("speed_max_mps", spec.motion.speed_max_mps);
    spec.motion.pause_s = motion_doc->number_at("pause_s", spec.motion.pause_s);
    spec.motion.group_count = static_cast<std::size_t>(motion_doc->int_at(
        "group_count", static_cast<std::int64_t>(spec.motion.group_count)));
    spec.motion.group_jitter_m =
        motion_doc->number_at("group_jitter_m", spec.motion.group_jitter_m);
  }
  if (const obs::JsonValue* churn_doc = doc.find("churn")) {
    spec.churn.leave_rate_hz =
        churn_doc->number_at("leave_rate_hz", spec.churn.leave_rate_hz);
    spec.churn.fail_rate_hz =
        churn_doc->number_at("fail_rate_hz", spec.churn.fail_rate_hz);
    spec.churn.join_rate_hz =
        churn_doc->number_at("join_rate_hz", spec.churn.join_rate_hz);
  }
  if (const obs::JsonValue* duty_doc = doc.find("duty")) {
    spec.duty.period_s = duty_doc->number_at("period_s", spec.duty.period_s);
    spec.duty.active_fraction =
        duty_doc->number_at("active_fraction", spec.duty.active_fraction);
  }
  if (const obs::JsonValue* data_doc = doc.find("data")) {
    spec.data.tick_interval_s =
        data_doc->number_at("tick_interval_s", spec.data.tick_interval_s);
    spec.data.readings_per_tick = static_cast<std::size_t>(data_doc->int_at(
        "readings_per_tick",
        static_cast<std::int64_t>(spec.data.readings_per_tick)));
    spec.data.reading_bytes = static_cast<std::size_t>(data_doc->int_at(
        "reading_bytes", static_cast<std::int64_t>(spec.data.reading_bytes)));
    spec.data.refresh_interval_s =
        data_doc->number_at("refresh_interval_s", spec.data.refresh_interval_s);
    spec.data.evict_interval_s =
        data_doc->number_at("evict_interval_s", spec.data.evict_interval_s);
    spec.data.evict_batch = static_cast<std::size_t>(data_doc->int_at(
        "evict_batch", static_cast<std::int64_t>(spec.data.evict_batch)));
  }

  const obs::JsonValue* phase_array = doc.find("phases");
  if (phase_array == nullptr || !phase_array->is_array()) return std::nullopt;
  for (const obs::JsonValue& phase_doc : phase_array->as_array()) {
    if (!phase_doc.is_object()) return std::nullopt;
    PhaseSpec phase;
    phase.name = phase_doc.string_at("name", "phase");
    phase.duration_s = phase_doc.number_at("duration_s", phase.duration_s);
    phase.mobility = phase_doc.bool_at("mobility", false);
    phase.churn = phase_doc.bool_at("churn", false);
    phase.duty = phase_doc.bool_at("duty", false);
    phase.recluster_after = phase_doc.bool_at("recluster_after", false);
    if (const obs::JsonValue* event_array = phase_doc.find("events")) {
      if (!event_array->is_array()) return std::nullopt;
      for (const obs::JsonValue& ev_doc : event_array->as_array()) {
        ScriptedEvent ev;
        const std::string kind = ev_doc.string_at("kind", "");
        if (kind == "partition") {
          ev.kind = ScriptedEvent::Kind::kPartition;
        } else if (kind == "heal") {
          ev.kind = ScriptedEvent::Kind::kHeal;
        } else {
          return std::nullopt;
        }
        ev.at_s = ev_doc.number_at("at_s", 0.0);
        ev.x_m = ev_doc.number_at("x_m", 0.0);
        phase.events.push_back(ev);
      }
    }
    spec.phases.push_back(std::move(phase));
  }
  return spec;
}

std::optional<ScenarioSpec> ScenarioSpec::parse(std::string_view text) {
  const auto doc = obs::JsonValue::parse(text);
  if (!doc) return std::nullopt;
  return from_json(*doc);
}

}  // namespace ldke::scenario
