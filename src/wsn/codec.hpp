#pragma once
/// \file codec.hpp
/// The unified wire codec: one encode()/decode<Body>() pair for every
/// over-the-air struct, replacing the per-message free-function zoo that
/// used to be scattered across src/core and src/wsn.
///
/// Each wire struct specializes Codec<Body> with two primitives:
///
///   static void write(Writer& w, const Body& body);
///   static std::optional<Body> read(Reader& r);
///
/// The generic entry points below add the envelope-wide contract on top:
/// decode() rejects a buffer that read() did not consume *exactly* —
/// truncated fields fail inside read() (the bounds-checked Reader returns
/// nullopt), and trailing garbage fails the exhausted() check here.  No
/// wire struct gets to opt out of either rule, which is what makes the
/// property tests in tests/wsn/codec_test.cpp expressible generically.

#include <optional>
#include <span>

#include "support/hex.hpp"
#include "wsn/wire.hpp"

namespace ldke::wsn {

/// Per-struct serialization primitive; specialized next to each wire
/// struct's definition (messages.hpp, core/mutesla.hpp, core/diffusion.hpp).
template <typename Body>
struct Codec;

/// Serializes \p body to fresh bytes.
template <typename Body>
[[nodiscard]] support::Bytes encode(const Body& body) {
  Writer w;
  Codec<Body>::write(w, body);
  return w.take();
}

/// Parses \p data as exactly one Body.  Returns std::nullopt on any
/// truncated field *or* trailing bytes — a decoded body always
/// re-encodes to the identical buffer.
template <typename Body>
[[nodiscard]] std::optional<Body> decode(std::span<const std::uint8_t> data) {
  Reader r{data};
  auto body = Codec<Body>::read(r);
  if (!body || !r.exhausted()) return std::nullopt;
  return body;
}

}  // namespace ldke::wsn
