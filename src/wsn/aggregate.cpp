#include "wsn/aggregate.hpp"

#include <algorithm>

namespace ldke::wsn {

support::Bytes encode(const Observation& obs) {
  Writer w;
  w.u32(obs.event_id);
  w.u32(static_cast<std::uint32_t>(obs.value));
  return w.take();
}

std::optional<Observation> decode_observation(
    std::span<const std::uint8_t> data) {
  Reader r{data};
  const auto event = r.u32();
  const auto value = r.u32();
  if (!event || !value || !r.exhausted()) return std::nullopt;
  return Observation{*event, static_cast<std::int32_t>(*value)};
}

void Combiner::add(std::int32_t value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Combiner::mean() const noexcept {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

void Combiner::merge(const Combiner& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

}  // namespace ldke::wsn
