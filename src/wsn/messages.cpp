#include "wsn/messages.hpp"

namespace ldke::wsn {

namespace {

void put_key(Writer& w, const crypto::Key128& key) { w.fixed(key.bytes); }

std::optional<crypto::Key128> get_key(Reader& r) {
  auto raw = r.fixed<crypto::kKeyBytes>();
  if (!raw) return std::nullopt;
  crypto::Key128 k;
  k.bytes = *raw;
  return k;
}

}  // namespace

void Codec<HelloBody>::write(Writer& w, const HelloBody& body) {
  w.u32(body.head_id);
  put_key(w, body.cluster_key);
}

std::optional<HelloBody> Codec<HelloBody>::read(Reader& r) {
  const auto id = r.u32();
  const auto key = get_key(r);
  if (!id || !key) return std::nullopt;
  return HelloBody{*id, *key};
}

void Codec<LinkAdvertBody>::write(Writer& w, const LinkAdvertBody& body) {
  w.u32(body.cid);
  put_key(w, body.cluster_key);
}

std::optional<LinkAdvertBody> Codec<LinkAdvertBody>::read(Reader& r) {
  const auto cid = r.u32();
  const auto key = get_key(r);
  if (!cid || !key) return std::nullopt;
  return LinkAdvertBody{*cid, *key};
}

void Codec<BeaconBody>::write(Writer& w, const BeaconBody& body) {
  w.u32(body.hop);
}

std::optional<BeaconBody> Codec<BeaconBody>::read(Reader& r) {
  const auto hop = r.u32();
  if (!hop) return std::nullopt;
  return BeaconBody{*hop};
}

void Codec<DataHeader>::write(Writer& w, const DataHeader& header) {
  w.u32(header.cid);
  w.u32(header.next_hop);
  w.u64(header.nonce);
}

std::optional<DataHeader> Codec<DataHeader>::read(Reader& r) {
  DataHeader header;
  const auto cid = r.u32();
  const auto next = r.u32();
  const auto nonce = r.u64();
  if (!cid || !next || !nonce) return std::nullopt;
  header.cid = *cid;
  header.next_hop = *next;
  header.nonce = *nonce;
  return header;
}

void Codec<DataInner>::write(Writer& w, const DataInner& inner) {
  w.i64(inner.tau_ns);
  w.u32(inner.echoed_cid);
  w.u32(inner.source);
  w.u64(inner.e2e_counter);
  w.u8(inner.e2e_encrypted);
  w.var_bytes(inner.body);
}

std::optional<DataInner> Codec<DataInner>::read(Reader& r) {
  DataInner inner;
  const auto tau = r.i64();
  const auto cid = r.u32();
  const auto source = r.u32();
  const auto counter = r.u64();
  const auto flag = r.u8();
  auto body = r.var_bytes();
  if (!tau || !cid || !source || !counter || !flag || !body) {
    return std::nullopt;
  }
  inner.tau_ns = *tau;
  inner.echoed_cid = *cid;
  inner.source = *source;
  inner.e2e_counter = *counter;
  inner.e2e_encrypted = *flag;
  inner.body = std::move(*body);
  return inner;
}

void Codec<BeaconInner>::write(Writer& w, const BeaconInner& inner) {
  w.u32(inner.hop);
  w.i64(inner.tau_ns);
  w.u32(inner.echoed_cid);
}

std::optional<BeaconInner> Codec<BeaconInner>::read(Reader& r) {
  BeaconInner inner;
  const auto hop = r.u32();
  const auto tau = r.i64();
  const auto cid = r.u32();
  if (!hop || !tau || !cid) return std::nullopt;
  inner.hop = *hop;
  inner.tau_ns = *tau;
  inner.echoed_cid = *cid;
  return inner;
}

crypto::MacTag revoke_tag(const crypto::Key128& chain_element,
                          const std::vector<ClusterId>& cids) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(cids.size()));
  for (ClusterId cid : cids) w.u32(cid);
  return crypto::mac(chain_element, w.buffer());
}

void Codec<RevokeBody>::write(Writer& w, const RevokeBody& body) {
  w.u16(static_cast<std::uint16_t>(body.revoked_cids.size()));
  for (ClusterId cid : body.revoked_cids) w.u32(cid);
  put_key(w, body.chain_element);
  w.fixed(body.tag);
}

std::optional<RevokeBody> Codec<RevokeBody>::read(Reader& r) {
  const auto count = r.u16();
  if (!count) return std::nullopt;
  RevokeBody body;
  body.revoked_cids.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto cid = r.u32();
    if (!cid) return std::nullopt;
    body.revoked_cids.push_back(*cid);
  }
  const auto key = get_key(r);
  const auto tag = r.fixed<crypto::kMacTagBytes>();
  if (!key || !tag) return std::nullopt;
  body.chain_element = *key;
  body.tag = *tag;
  return body;
}

void Codec<JoinBody>::write(Writer& w, const JoinBody& body) {
  w.u32(body.new_id);
}

std::optional<JoinBody> Codec<JoinBody>::read(Reader& r) {
  const auto id = r.u32();
  if (!id) return std::nullopt;
  return JoinBody{*id};
}

crypto::MacTag join_reply_tag(const crypto::Key128& cluster_key, ClusterId cid,
                              std::uint32_t hash_epoch) {
  Writer w;
  w.u32(cid);
  w.u32(hash_epoch);
  return crypto::mac(cluster_key, w.buffer());
}

void Codec<JoinReplyBody>::write(Writer& w, const JoinReplyBody& body) {
  w.u32(body.cid);
  w.u32(body.hash_epoch);
  w.fixed(body.tag);
}

std::optional<JoinReplyBody> Codec<JoinReplyBody>::read(Reader& r) {
  JoinReplyBody body;
  const auto cid = r.u32();
  const auto epoch = r.u32();
  const auto tag = r.fixed<crypto::kMacTagBytes>();
  if (!cid || !epoch || !tag) return std::nullopt;
  body.cid = *cid;
  body.hash_epoch = *epoch;
  body.tag = *tag;
  return body;
}

void Codec<RefreshBody>::write(Writer& w, const RefreshBody& body) {
  w.u32(body.cid);
  put_key(w, body.new_key);
  w.u32(body.epoch);
}

std::optional<RefreshBody> Codec<RefreshBody>::read(Reader& r) {
  RefreshBody body;
  const auto cid = r.u32();
  const auto key = get_key(r);
  const auto epoch = r.u32();
  if (!cid || !key || !epoch) return std::nullopt;
  body.cid = *cid;
  body.new_key = *key;
  body.epoch = *epoch;
  return body;
}

// ---- hop envelope --------------------------------------------------------

std::optional<Envelope> split_envelope(std::span<const std::uint8_t> payload) {
  if (payload.size() < kDataHeaderBytes) return std::nullopt;
  Reader r{payload.first(kDataHeaderBytes)};
  auto header = Codec<DataHeader>::read(r);
  if (!header) return std::nullopt;
  return Envelope{*header, payload.first(kDataHeaderBytes),
                  payload.subspan(kDataHeaderBytes)};
}

support::Bytes join_envelope(std::span<const std::uint8_t> header_bytes,
                             std::span<const std::uint8_t> sealed) {
  support::Bytes out;
  out.reserve(header_bytes.size() + sealed.size());
  out.insert(out.end(), header_bytes.begin(), header_bytes.end());
  out.insert(out.end(), sealed.begin(), sealed.end());
  return out;
}

}  // namespace ldke::wsn
