#include "wsn/messages.hpp"

namespace ldke::wsn {

namespace {

void put_key(Writer& w, const crypto::Key128& key) { w.fixed(key.bytes); }

std::optional<crypto::Key128> get_key(Reader& r) {
  auto raw = r.fixed<crypto::kKeyBytes>();
  if (!raw) return std::nullopt;
  crypto::Key128 k;
  k.bytes = *raw;
  return k;
}

}  // namespace

support::Bytes encode(const HelloBody& body) {
  Writer w;
  w.u32(body.head_id);
  put_key(w, body.cluster_key);
  return w.take();
}

std::optional<HelloBody> decode_hello(std::span<const std::uint8_t> data) {
  Reader r{data};
  HelloBody body;
  const auto id = r.u32();
  const auto key = get_key(r);
  if (!id || !key || !r.exhausted()) return std::nullopt;
  body.head_id = *id;
  body.cluster_key = *key;
  return body;
}

support::Bytes encode(const LinkAdvertBody& body) {
  Writer w;
  w.u32(body.cid);
  put_key(w, body.cluster_key);
  return w.take();
}

std::optional<LinkAdvertBody> decode_link_advert(
    std::span<const std::uint8_t> data) {
  Reader r{data};
  LinkAdvertBody body;
  const auto cid = r.u32();
  const auto key = get_key(r);
  if (!cid || !key || !r.exhausted()) return std::nullopt;
  body.cid = *cid;
  body.cluster_key = *key;
  return body;
}

support::Bytes encode(const BeaconBody& body) {
  Writer w;
  w.u32(body.hop);
  return w.take();
}

std::optional<BeaconBody> decode_beacon(std::span<const std::uint8_t> data) {
  Reader r{data};
  const auto hop = r.u32();
  if (!hop || !r.exhausted()) return std::nullopt;
  return BeaconBody{*hop};
}

support::Bytes encode(const DataHeader& header) {
  Writer w;
  w.u32(header.cid);
  w.u32(header.next_hop);
  w.u64(header.nonce);
  return w.take();
}

std::optional<DataHeader> decode_data_header(
    std::span<const std::uint8_t> data, support::Bytes& sealed_out) {
  Reader r{data};
  DataHeader header;
  const auto cid = r.u32();
  const auto next = r.u32();
  const auto nonce = r.u64();
  if (!cid || !next || !nonce) return std::nullopt;
  header.cid = *cid;
  header.next_hop = *next;
  header.nonce = *nonce;
  sealed_out = r.take_rest();
  return header;
}

support::Bytes encode(const DataInner& inner) {
  Writer w;
  w.i64(inner.tau_ns);
  w.u32(inner.echoed_cid);
  w.u32(inner.source);
  w.u64(inner.e2e_counter);
  w.u8(inner.e2e_encrypted);
  w.var_bytes(inner.body);
  return w.take();
}

std::optional<DataInner> decode_data_inner(
    std::span<const std::uint8_t> data) {
  Reader r{data};
  DataInner inner;
  const auto tau = r.i64();
  const auto cid = r.u32();
  const auto source = r.u32();
  const auto counter = r.u64();
  const auto flag = r.u8();
  auto body = r.var_bytes();
  if (!tau || !cid || !source || !counter || !flag || !body || !r.exhausted()) {
    return std::nullopt;
  }
  inner.tau_ns = *tau;
  inner.echoed_cid = *cid;
  inner.source = *source;
  inner.e2e_counter = *counter;
  inner.e2e_encrypted = *flag;
  inner.body = std::move(*body);
  return inner;
}

support::Bytes encode(const BeaconInner& inner) {
  Writer w;
  w.u32(inner.hop);
  w.i64(inner.tau_ns);
  w.u32(inner.echoed_cid);
  return w.take();
}

std::optional<BeaconInner> decode_beacon_inner(
    std::span<const std::uint8_t> data) {
  Reader r{data};
  BeaconInner inner;
  const auto hop = r.u32();
  const auto tau = r.i64();
  const auto cid = r.u32();
  if (!hop || !tau || !cid || !r.exhausted()) return std::nullopt;
  inner.hop = *hop;
  inner.tau_ns = *tau;
  inner.echoed_cid = *cid;
  return inner;
}

crypto::MacTag revoke_tag(const crypto::Key128& chain_element,
                          const std::vector<ClusterId>& cids) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(cids.size()));
  for (ClusterId cid : cids) w.u32(cid);
  return crypto::mac(chain_element, w.buffer());
}

support::Bytes encode(const RevokeBody& body) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(body.revoked_cids.size()));
  for (ClusterId cid : body.revoked_cids) w.u32(cid);
  put_key(w, body.chain_element);
  w.fixed(body.tag);
  return w.take();
}

std::optional<RevokeBody> decode_revoke(std::span<const std::uint8_t> data) {
  Reader r{data};
  const auto count = r.u16();
  if (!count) return std::nullopt;
  RevokeBody body;
  body.revoked_cids.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto cid = r.u32();
    if (!cid) return std::nullopt;
    body.revoked_cids.push_back(*cid);
  }
  const auto key = get_key(r);
  const auto tag = r.fixed<crypto::kMacTagBytes>();
  if (!key || !tag || !r.exhausted()) return std::nullopt;
  body.chain_element = *key;
  body.tag = *tag;
  return body;
}

support::Bytes encode(const JoinBody& body) {
  Writer w;
  w.u32(body.new_id);
  return w.take();
}

std::optional<JoinBody> decode_join(std::span<const std::uint8_t> data) {
  Reader r{data};
  const auto id = r.u32();
  if (!id || !r.exhausted()) return std::nullopt;
  return JoinBody{*id};
}

crypto::MacTag join_reply_tag(const crypto::Key128& cluster_key, ClusterId cid,
                              std::uint32_t hash_epoch) {
  Writer w;
  w.u32(cid);
  w.u32(hash_epoch);
  return crypto::mac(cluster_key, w.buffer());
}

support::Bytes encode(const JoinReplyBody& body) {
  Writer w;
  w.u32(body.cid);
  w.u32(body.hash_epoch);
  w.fixed(body.tag);
  return w.take();
}

std::optional<JoinReplyBody> decode_join_reply(
    std::span<const std::uint8_t> data) {
  Reader r{data};
  JoinReplyBody body;
  const auto cid = r.u32();
  const auto epoch = r.u32();
  const auto tag = r.fixed<crypto::kMacTagBytes>();
  if (!cid || !epoch || !tag || !r.exhausted()) return std::nullopt;
  body.cid = *cid;
  body.hash_epoch = *epoch;
  body.tag = *tag;
  return body;
}

support::Bytes encode(const RefreshBody& body) {
  Writer w;
  w.u32(body.cid);
  put_key(w, body.new_key);
  w.u32(body.epoch);
  return w.take();
}

std::optional<RefreshBody> decode_refresh(std::span<const std::uint8_t> data) {
  Reader r{data};
  RefreshBody body;
  const auto cid = r.u32();
  const auto key = get_key(r);
  const auto epoch = r.u32();
  if (!cid || !key || !epoch || !r.exhausted()) return std::nullopt;
  body.cid = *cid;
  body.new_key = *key;
  body.epoch = *epoch;
  return body;
}

}  // namespace ldke::wsn
