#pragma once
/// \file wire.hpp
/// Bounds-checked little-endian serialization for over-the-air message
/// bodies.  Reader methods return std::optional so malformed (or
/// garbled-after-decryption) packets are rejected, never UB.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "support/hex.hpp"

namespace ldke::wsn {

class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (u16) variable byte string.
  void var_bytes(std::span<const std::uint8_t> data);

  template <std::size_t N>
  void fixed(const std::array<std::uint8_t, N>& data) {
    bytes(std::span<const std::uint8_t>{data});
  }

  [[nodiscard]] const support::Bytes& buffer() const noexcept { return out_; }
  [[nodiscard]] support::Bytes take() noexcept { return std::move(out_); }
  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

 private:
  support::Bytes out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> u8() noexcept;
  [[nodiscard]] std::optional<std::uint16_t> u16() noexcept;
  [[nodiscard]] std::optional<std::uint32_t> u32() noexcept;
  [[nodiscard]] std::optional<std::uint64_t> u64() noexcept;
  [[nodiscard]] std::optional<std::int64_t> i64() noexcept {
    const auto v = u64();
    if (!v) return std::nullopt;
    return static_cast<std::int64_t>(*v);
  }
  [[nodiscard]] std::optional<support::Bytes> bytes(std::size_t count);
  [[nodiscard]] std::optional<support::Bytes> var_bytes();

  template <std::size_t N>
  [[nodiscard]] std::optional<std::array<std::uint8_t, N>> fixed() noexcept {
    if (remaining() < N) return std::nullopt;
    std::array<std::uint8_t, N> out;
    for (std::size_t i = 0; i < N; ++i) out[i] = data_[pos_ + i];
    pos_ += N;
    return out;
  }

  /// All bytes not yet consumed (does not advance).
  [[nodiscard]] std::span<const std::uint8_t> rest() const noexcept {
    return data_.subspan(pos_);
  }
  /// Consumes and returns all remaining bytes.
  [[nodiscard]] support::Bytes take_rest();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ldke::wsn
