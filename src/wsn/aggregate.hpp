#pragma once
/// \file aggregate.hpp
/// Data-fusion helpers (§II "Intermediate Node Accessibility of Data",
/// §IV-C data-fusion mode).  The protocol lets a forwarder decrypt the
/// hop envelope and decide whether a reading is redundant; these
/// utilities implement the standard decisions: duplicate suppression by
/// event id and in-network min/max/sum/count combining.

#include <cstdint>
#include <optional>

#include "support/flat_map.hpp"
#include "support/hex.hpp"
#include "wsn/wire.hpp"

namespace ldke::wsn {

/// An event observation: which phenomenon was seen and the measurement.
struct Observation {
  std::uint32_t event_id = 0;
  std::int32_t value = 0;
};

[[nodiscard]] support::Bytes encode(const Observation& obs);
[[nodiscard]] std::optional<Observation> decode_observation(
    std::span<const std::uint8_t> data);

/// Forwarder-side duplicate suppression: remembers event ids it has
/// already relayed and discards further copies ("discard extraneous
/// messages reported back to the base station", §I).
class DuplicateSuppressor {
 public:
  /// Returns true iff this observation is the first copy (forward it).
  bool first_copy(std::uint32_t event_id) {
    return seen_.insert(event_id).second;
  }

  [[nodiscard]] std::size_t distinct_events() const noexcept {
    return seen_.size();
  }

  void reset() noexcept { seen_.clear(); }

 private:
  support::FlatSet<std::uint32_t, 0> seen_;
};

/// Streaming combiner for readings of one event: the fused summary a
/// forwarder could send instead of the raw copies.
class Combiner {
 public:
  void add(std::int32_t value) noexcept;

  [[nodiscard]] std::uint32_t count() const noexcept { return count_; }
  [[nodiscard]] std::int32_t min() const noexcept { return min_; }
  [[nodiscard]] std::int32_t max() const noexcept { return max_; }
  [[nodiscard]] std::int64_t sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;

  /// Merges another combiner (fusing two partial aggregates).
  void merge(const Combiner& other) noexcept;

 private:
  std::uint32_t count_ = 0;
  std::int32_t min_ = 0;
  std::int32_t max_ = 0;
  std::int64_t sum_ = 0;
};

}  // namespace ldke::wsn
