#include "wsn/wire.hpp"

namespace ldke::wsn {

void Writer::u8(std::uint8_t v) { out_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void Writer::var_bytes(std::span<const std::uint8_t> data) {
  u16(static_cast<std::uint16_t>(data.size()));
  bytes(data);
}

std::optional<std::uint8_t> Reader::u8() noexcept {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> Reader::u16() noexcept {
  if (remaining() < 2) return std::nullopt;
  std::uint16_t v = data_[pos_];
  v = static_cast<std::uint16_t>(v | (std::uint16_t{data_[pos_ + 1]} << 8));
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> Reader::u32() noexcept {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> Reader::u64() noexcept {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
  pos_ += 8;
  return v;
}

std::optional<support::Bytes> Reader::bytes(std::size_t count) {
  if (remaining() < count) return std::nullopt;
  support::Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                     data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += count;
  return out;
}

std::optional<support::Bytes> Reader::var_bytes() {
  const auto len = u16();
  if (!len) return std::nullopt;
  return bytes(*len);
}

support::Bytes Reader::take_rest() {
  support::Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                     data_.end());
  pos_ = data_.size();
  return out;
}

}  // namespace ldke::wsn
