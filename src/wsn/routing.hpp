#pragma once
/// \file routing.hpp
/// Minimum-hop gradient routing toward the base station.
///
/// The paper is routing-agnostic ("no matter what routing protocol is
/// followed, intermediate nodes need to verify..."); data still has to
/// reach the base station, so we provide the standard WSN choice: the
/// base station floods a beacon, every node remembers its hop distance
/// and a parent (first neighbor heard at the minimum hop), and data
/// follows parents downhill.  Beacons are wrapped in the protocol's hop
/// envelope by src/core once keys exist.

#include <cstdint>

#include "net/topology.hpp"

namespace ldke::wsn {

/// Per-node routing state.
class RoutingTable {
 public:
  static constexpr std::uint32_t kUnreachable = UINT32_MAX;

  /// Considers a beacon advertising that \p from is \p hop hops from the
  /// base station.  Returns true iff the offer improved this node's route
  /// (in which case the caller should rebroadcast hop+1).
  bool offer(net::NodeId from, std::uint32_t hop) noexcept;

  [[nodiscard]] bool has_route() const noexcept {
    return hop_ != kUnreachable;
  }
  /// This node's hop distance to the base station.
  [[nodiscard]] std::uint32_t hop() const noexcept { return hop_; }
  /// Neighbor to forward toward the base station (kNoNode if none).
  [[nodiscard]] net::NodeId parent() const noexcept { return parent_; }

  /// Declares this node the gradient root (hop 0, no parent) — the base
  /// station calls this before flooding the first beacon.
  void make_root() noexcept {
    hop_ = 0;
    parent_ = net::kNoNode;
  }

  void reset() noexcept {
    hop_ = kUnreachable;
    parent_ = net::kNoNode;
  }

 private:
  std::uint32_t hop_ = kUnreachable;
  net::NodeId parent_ = net::kNoNode;
};

}  // namespace ldke::wsn
