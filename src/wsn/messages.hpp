#pragma once
/// \file messages.hpp
/// Plaintext message bodies for every protocol packet, with encode /
/// decode via the bounds-checked wire layer.  Encryption wrapping is the
/// responsibility of src/core (it owns the keys); these are the byte
/// layouts *inside* (or, for cleartext headers, outside) the envelopes.

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/key.hpp"
#include "net/topology.hpp"
#include "wsn/codec.hpp"
#include "wsn/wire.hpp"

namespace ldke::wsn {

using net::NodeId;

/// Cluster identifier == the elected head's node id (§IV-B.1).
using ClusterId = std::uint32_t;

inline constexpr ClusterId kNoCluster = UINT32_MAX;

/// §IV-B.1 — HELLO: "E_Km(ID_i | Kc_i | MAC)".  This body is sealed under
/// the master key Km.
struct HelloBody {
  NodeId head_id = net::kNoNode;
  crypto::Key128 cluster_key;
};

/// §IV-B.2 — link establishment: "E_Km(CID_i | Kc | MAC)".
struct LinkAdvertBody {
  ClusterId cid = kNoCluster;
  crypto::Key128 cluster_key;
};

/// Routing gradient beacon (hop count to the base station).  Carried
/// inside a hop envelope once key setup is complete.
struct BeaconBody {
  std::uint32_t hop = 0;
};

/// §IV-C Step 2 cleartext header: the CID tells receivers which key of
/// their set S authenticates the envelope; next_hop designates the
/// forwarder (all neighbors can still decrypt and "peek").
struct DataHeader {
  ClusterId cid = kNoCluster;
  NodeId next_hop = net::kNoNode;
  std::uint64_t nonce = 0;  ///< per-sender envelope nonce
};

/// §IV-C Step 2 protected interior: freshness timestamp, echoed CID
/// (binds envelope to header), and the Step-1 block c1.
struct DataInner {
  std::int64_t tau_ns = 0;   ///< time() at wrapping, for freshness
  ClusterId echoed_cid = kNoCluster;
  NodeId source = net::kNoNode;      ///< originating sensor
  std::uint64_t e2e_counter = 0;     ///< Step-1 counter (0 when Step 1 omitted)
  std::uint8_t e2e_encrypted = 0;    ///< 1 iff body is a Step-1 envelope
  support::Bytes body;               ///< D, or E2E-sealed D
};

/// Protected interior of a routing beacon (sealed like a Step-2
/// envelope under the sender's cluster key).
struct BeaconInner {
  std::uint32_t hop = 0;
  std::int64_t tau_ns = 0;
  ClusterId echoed_cid = kNoCluster;
};

/// §IV-D — revocation command.  The chain element authenticates the
/// chain position; the tag (keyed by that element) binds the CID list to
/// it, µTESLA-style.
struct RevokeBody {
  std::vector<ClusterId> revoked_cids;
  crypto::Key128 chain_element;
  crypto::MacTag tag{};
};

/// Tag input for a RevokeBody: MAC over the encoded CID list, keyed by
/// the chain element.
[[nodiscard]] crypto::MacTag revoke_tag(const crypto::Key128& chain_element,
                                        const std::vector<ClusterId>& cids);

/// §IV-E — a joining node announces itself (cleartext; the reply is
/// authenticated instead).
struct JoinBody {
  NodeId new_id = net::kNoNode;
};

/// §IV-E — "the response sent by existing nodes is simply CID,
/// MAC_Kc(CID)" to block impersonation of fake clusters.  hash_epoch
/// extends this with the number of hash-refresh rounds applied so far
/// (the paper refreshes "by periodically hashing these keys at fixed
/// time intervals"), letting the joiner fast-forward its KMC-derived key
/// to the current epoch.  The tag covers cid | hash_epoch under the
/// *current* cluster key.
struct JoinReplyBody {
  ClusterId cid = kNoCluster;
  std::uint32_t hash_epoch = 0;
  crypto::MacTag tag{};
};

/// Tag input for a JoinReplyBody.
[[nodiscard]] crypto::MacTag join_reply_tag(const crypto::Key128& cluster_key,
                                            ClusterId cid,
                                            std::uint32_t hash_epoch);

/// §IV-C — cluster-key refresh announcement (sealed under the current
/// cluster key).
struct RefreshBody {
  ClusterId cid = kNoCluster;
  crypto::Key128 new_key;
  std::uint32_t epoch = 0;
};

// ---- codec specializations ----------------------------------------------
// Every body serializes through the unified codec (wsn/codec.hpp):
// wsn::encode(body) / wsn::decode<Body>(bytes).

template <>
struct Codec<HelloBody> {
  static void write(Writer& w, const HelloBody& body);
  static std::optional<HelloBody> read(Reader& r);
};

template <>
struct Codec<LinkAdvertBody> {
  static void write(Writer& w, const LinkAdvertBody& body);
  static std::optional<LinkAdvertBody> read(Reader& r);
};

template <>
struct Codec<BeaconBody> {
  static void write(Writer& w, const BeaconBody& body);
  static std::optional<BeaconBody> read(Reader& r);
};

template <>
struct Codec<DataHeader> {
  static void write(Writer& w, const DataHeader& header);
  static std::optional<DataHeader> read(Reader& r);
};

template <>
struct Codec<DataInner> {
  static void write(Writer& w, const DataInner& inner);
  static std::optional<DataInner> read(Reader& r);
};

template <>
struct Codec<BeaconInner> {
  static void write(Writer& w, const BeaconInner& inner);
  static std::optional<BeaconInner> read(Reader& r);
};

template <>
struct Codec<RevokeBody> {
  static void write(Writer& w, const RevokeBody& body);
  static std::optional<RevokeBody> read(Reader& r);
};

template <>
struct Codec<JoinBody> {
  static void write(Writer& w, const JoinBody& body);
  static std::optional<JoinBody> read(Reader& r);
};

template <>
struct Codec<JoinReplyBody> {
  static void write(Writer& w, const JoinReplyBody& body);
  static std::optional<JoinReplyBody> read(Reader& r);
};

template <>
struct Codec<RefreshBody> {
  static void write(Writer& w, const RefreshBody& body);
  static std::optional<RefreshBody> read(Reader& r);
};

// ---- hop envelope --------------------------------------------------------

/// Encoded size of a DataHeader (cid u32 | next_hop u32 | nonce u64).
inline constexpr std::size_t kDataHeaderBytes = 16;

/// A parsed hop envelope: the cleartext header plus *views* into the
/// original packet buffer (no copies — the payload is immutable and
/// outlives the handler call).  header_bytes is the AAD the sealed part
/// is authenticated against.
struct Envelope {
  DataHeader header;
  std::span<const std::uint8_t> header_bytes;
  std::span<const std::uint8_t> sealed;
};

/// Splits `header || sealed` without copying either part.  Rejects
/// payloads shorter than a header.
[[nodiscard]] std::optional<Envelope> split_envelope(
    std::span<const std::uint8_t> payload);

/// Concatenates `header_bytes || sealed` into one payload buffer (single
/// allocation — the one payload allocation a transmission makes).
[[nodiscard]] support::Bytes join_envelope(
    std::span<const std::uint8_t> header_bytes,
    std::span<const std::uint8_t> sealed);

}  // namespace ldke::wsn
