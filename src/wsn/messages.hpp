#pragma once
/// \file messages.hpp
/// Plaintext message bodies for every protocol packet, with encode /
/// decode via the bounds-checked wire layer.  Encryption wrapping is the
/// responsibility of src/core (it owns the keys); these are the byte
/// layouts *inside* (or, for cleartext headers, outside) the envelopes.

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/key.hpp"
#include "net/topology.hpp"
#include "wsn/wire.hpp"

namespace ldke::wsn {

using net::NodeId;

/// Cluster identifier == the elected head's node id (§IV-B.1).
using ClusterId = std::uint32_t;

inline constexpr ClusterId kNoCluster = UINT32_MAX;

/// §IV-B.1 — HELLO: "E_Km(ID_i | Kc_i | MAC)".  This body is sealed under
/// the master key Km.
struct HelloBody {
  NodeId head_id = net::kNoNode;
  crypto::Key128 cluster_key;
};

/// §IV-B.2 — link establishment: "E_Km(CID_i | Kc | MAC)".
struct LinkAdvertBody {
  ClusterId cid = kNoCluster;
  crypto::Key128 cluster_key;
};

/// Routing gradient beacon (hop count to the base station).  Carried
/// inside a hop envelope once key setup is complete.
struct BeaconBody {
  std::uint32_t hop = 0;
};

/// §IV-C Step 2 cleartext header: the CID tells receivers which key of
/// their set S authenticates the envelope; next_hop designates the
/// forwarder (all neighbors can still decrypt and "peek").
struct DataHeader {
  ClusterId cid = kNoCluster;
  NodeId next_hop = net::kNoNode;
  std::uint64_t nonce = 0;  ///< per-sender envelope nonce
};

/// §IV-C Step 2 protected interior: freshness timestamp, echoed CID
/// (binds envelope to header), and the Step-1 block c1.
struct DataInner {
  std::int64_t tau_ns = 0;   ///< time() at wrapping, for freshness
  ClusterId echoed_cid = kNoCluster;
  NodeId source = net::kNoNode;      ///< originating sensor
  std::uint64_t e2e_counter = 0;     ///< Step-1 counter (0 when Step 1 omitted)
  std::uint8_t e2e_encrypted = 0;    ///< 1 iff body is a Step-1 envelope
  support::Bytes body;               ///< D, or E2E-sealed D
};

/// Protected interior of a routing beacon (sealed like a Step-2
/// envelope under the sender's cluster key).
struct BeaconInner {
  std::uint32_t hop = 0;
  std::int64_t tau_ns = 0;
  ClusterId echoed_cid = kNoCluster;
};

/// §IV-D — revocation command.  The chain element authenticates the
/// chain position; the tag (keyed by that element) binds the CID list to
/// it, µTESLA-style.
struct RevokeBody {
  std::vector<ClusterId> revoked_cids;
  crypto::Key128 chain_element;
  crypto::MacTag tag{};
};

/// Tag input for a RevokeBody: MAC over the encoded CID list, keyed by
/// the chain element.
[[nodiscard]] crypto::MacTag revoke_tag(const crypto::Key128& chain_element,
                                        const std::vector<ClusterId>& cids);

/// §IV-E — a joining node announces itself (cleartext; the reply is
/// authenticated instead).
struct JoinBody {
  NodeId new_id = net::kNoNode;
};

/// §IV-E — "the response sent by existing nodes is simply CID,
/// MAC_Kc(CID)" to block impersonation of fake clusters.  hash_epoch
/// extends this with the number of hash-refresh rounds applied so far
/// (the paper refreshes "by periodically hashing these keys at fixed
/// time intervals"), letting the joiner fast-forward its KMC-derived key
/// to the current epoch.  The tag covers cid | hash_epoch under the
/// *current* cluster key.
struct JoinReplyBody {
  ClusterId cid = kNoCluster;
  std::uint32_t hash_epoch = 0;
  crypto::MacTag tag{};
};

/// Tag input for a JoinReplyBody.
[[nodiscard]] crypto::MacTag join_reply_tag(const crypto::Key128& cluster_key,
                                            ClusterId cid,
                                            std::uint32_t hash_epoch);

/// §IV-C — cluster-key refresh announcement (sealed under the current
/// cluster key).
struct RefreshBody {
  ClusterId cid = kNoCluster;
  crypto::Key128 new_key;
  std::uint32_t epoch = 0;
};

// ---- encode / decode ----------------------------------------------------

[[nodiscard]] support::Bytes encode(const HelloBody& body);
[[nodiscard]] std::optional<HelloBody> decode_hello(
    std::span<const std::uint8_t> data);

[[nodiscard]] support::Bytes encode(const LinkAdvertBody& body);
[[nodiscard]] std::optional<LinkAdvertBody> decode_link_advert(
    std::span<const std::uint8_t> data);

[[nodiscard]] support::Bytes encode(const BeaconBody& body);
[[nodiscard]] std::optional<BeaconBody> decode_beacon(
    std::span<const std::uint8_t> data);

[[nodiscard]] support::Bytes encode(const DataHeader& header);
/// Decodes the header and returns the remaining (sealed) bytes through
/// \p sealed_out.
[[nodiscard]] std::optional<DataHeader> decode_data_header(
    std::span<const std::uint8_t> data, support::Bytes& sealed_out);

[[nodiscard]] support::Bytes encode(const DataInner& inner);
[[nodiscard]] std::optional<DataInner> decode_data_inner(
    std::span<const std::uint8_t> data);

[[nodiscard]] support::Bytes encode(const BeaconInner& inner);
[[nodiscard]] std::optional<BeaconInner> decode_beacon_inner(
    std::span<const std::uint8_t> data);

[[nodiscard]] support::Bytes encode(const RevokeBody& body);
[[nodiscard]] std::optional<RevokeBody> decode_revoke(
    std::span<const std::uint8_t> data);

[[nodiscard]] support::Bytes encode(const JoinBody& body);
[[nodiscard]] std::optional<JoinBody> decode_join(
    std::span<const std::uint8_t> data);

[[nodiscard]] support::Bytes encode(const JoinReplyBody& body);
[[nodiscard]] std::optional<JoinReplyBody> decode_join_reply(
    std::span<const std::uint8_t> data);

[[nodiscard]] support::Bytes encode(const RefreshBody& body);
[[nodiscard]] std::optional<RefreshBody> decode_refresh(
    std::span<const std::uint8_t> data);

}  // namespace ldke::wsn
