#include "wsn/routing.hpp"

namespace ldke::wsn {

bool RoutingTable::offer(net::NodeId from, std::uint32_t hop) noexcept {
  if (hop == kUnreachable) return false;
  const std::uint32_t my_hop = hop + 1;
  if (my_hop < hop_) {
    hop_ = my_hop;
    parent_ = from;
    return true;
  }
  return false;
}

}  // namespace ldke::wsn
