#!/bin/bash
# Runs every bench at full fidelity from a dedicated *Release* build tree
# and records the outputs into results/.  Honors LDKE_BENCH_TRIALS /
# LDKE_BENCH_NODES for quick runs and LDKE_BENCH_BUILD_DIR to relocate
# the build tree (default: build-bench/).
#
# Numbers are only worth recording from an optimized build, so this
# script configures its own -DCMAKE_BUILD_TYPE=Release tree (the default
# build/ tree may be Debug, or carry an empty cached CMAKE_BUILD_TYPE
# from an old configure) and refuses to record otherwise.  The
# google-benchmark micro suites additionally emit machine-readable JSON
# (results/BENCH_crypto_micro.json, results/BENCH_sim_micro.json) for
# before/after diffing.
#
# Note: google-benchmark's "Library was built as DEBUG" console warning
# and the JSON's "library_build_type" field describe the *installed
# libbenchmark package* (Debian ships it debug-built), not our code, so
# they appear even from a Release tree.  The refusal below therefore
# keys on the one thing this script controls and that governs our own
# code's optimization: the build tree's cached CMAKE_BUILD_TYPE — every
# binary run here was just built from that tree.
set -u
cd "$(dirname "$0")" || exit 1

BUILD_DIR=${LDKE_BENCH_BUILD_DIR:-build-bench}

cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release > /dev/null || exit 1
cmake --build "$BUILD_DIR" -j"$(nproc)" || exit 1

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")
case "$build_type" in
  Release|RelWithDebInfo) ;;
  *)
    echo "refusing to record benches: $BUILD_DIR is '$build_type', not Release" >&2
    exit 1
    ;;
esac

mkdir -p results
status=0

# google-benchmark suites that also record JSON for before/after diffing.
declare -A json_out=(
  [bench_crypto_micro]=BENCH_crypto_micro.json
  [bench_sim_micro]=BENCH_sim_micro.json
  [bench_net_micro]=BENCH_net_micro.json
)

for b in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  echo "=== $name ==="
  extra=()
  if [[ -v "json_out[$name]" ]]; then
    extra=(--benchmark_out="results/${json_out[$name]}"
           --benchmark_out_format=json)
  fi
  "$b" "${extra[@]}" > "results/$name.txt" 2>&1
  rc=$?
  echo "exit=$rc ($name)"
  [ $rc -ne 0 ] && status=1
done

# Diff each fresh micro-suite JSON against its committed *_before.json
# baseline, when one exists (e.g. results/BENCH_net_micro_before.json
# was captured on the pre-zero-copy seed).
for after in results/BENCH_*_micro.json; do
  [ -f "$after" ] || continue
  before="${after%.json}_before.json"
  [ -f "$before" ] || continue
  echo "=== diff $(basename "$before") -> $(basename "$after") ==="
  python3 - "$before" "$after" <<'PYEOF'
import json, sys

def load(path):
    out = {}
    for b in json.load(open(path))["benchmarks"]:
        out[b["name"]] = b
    return out

before, after = load(sys.argv[1]), load(sys.argv[2])
for name in before:
    if name not in after:
        continue
    b, a = before[name], after[name]
    bt, at = b["real_time"], a["real_time"]
    line = f"{name:40s} {bt:10.1f} -> {at:10.1f} {a['time_unit']}"
    if bt > 0:
        line += f"  ({(at - bt) / bt * 100.0:+.1f}%)"
    for counter in ("allocs_per_tx", "deliveries_per_tx"):
        if counter in a:
            line += f"  {counter}={a[counter]:g}"
    print(line)
PYEOF
done

# Diff the fresh data-plane bench against the committed baseline (the
# results/BENCH_dataplane.json the bench just overwrote).
if [ -f results/BENCH_dataplane.json ] &&
   git cat-file -e HEAD:results/BENCH_dataplane.json 2>/dev/null; then
  echo "=== diff BENCH_dataplane.json (committed -> fresh) ==="
  git show HEAD:results/BENCH_dataplane.json > results/.dataplane_baseline.json
  python3 - results/.dataplane_baseline.json results/BENCH_dataplane.json <<'PYEOF'
import json, sys

before = json.load(open(sys.argv[1]))
after = json.load(open(sys.argv[2]))

def walk(path, b, a):
    if isinstance(b, dict) and isinstance(a, dict):
        for k in b:
            if k in a:
                walk(path + [k], b[k], a[k])
        return
    if isinstance(b, (int, float)) and not isinstance(b, bool) and b != 0:
        name = ".".join(path)
        delta = (a - b) / b * 100.0
        flag = "  <-- drifted" if abs(delta) > 25.0 else ""
        print(f"{name:45s} {b:14.1f} -> {a:14.1f}  ({delta:+.1f}%){flag}")

for key in ("crypto", "pipelines", "engine_wall_speedup"):
    if key in before and key in after:
        walk([key], before[key], after[key])
PYEOF
  rm -f results/.dataplane_baseline.json
fi

# Diff the fresh scenario bench against the committed baseline: per-point
# mobile-scale sweep timings (the incremental-vs-full speedup is the
# number this artifact exists to pin) plus per-scenario wall time.
if [ -f results/BENCH_scenarios.json ] &&
   git cat-file -e HEAD:results/BENCH_scenarios.json 2>/dev/null; then
  echo "=== diff BENCH_scenarios.json (committed -> fresh) ==="
  git show HEAD:results/BENCH_scenarios.json > results/.scenarios_baseline.json
  python3 - results/.scenarios_baseline.json results/BENCH_scenarios.json <<'PYEOF'
import json, sys

before = json.load(open(sys.argv[1]))
after = json.load(open(sys.argv[2]))

def points(doc):
    return {p["nodes"]: p for p in doc.get("scale_sweep", [])}

def show(name, b, a, flag_drift=True):
    if not isinstance(b, (int, float)) or isinstance(b, bool) or b == 0:
        return
    delta = (a - b) / b * 100.0
    flag = "  <-- drifted" if flag_drift and abs(delta) > 25.0 else ""
    print(f"{name:45s} {b:14.3f} -> {a:14.3f}  ({delta:+.1f}%){flag}")

bp, ap = points(before), points(after)
for nodes in sorted(bp):
    if nodes not in ap:
        continue
    for field in ("incr_epoch_s", "full_epoch_s", "speedup", "engine_wall_s"):
        if field in bp[nodes] and field in ap[nodes]:
            show(f"scale_sweep[{nodes}].{field}",
                 bp[nodes][field], ap[nodes][field])

bs = {s["engine"]["name"]: s for s in before.get("scenarios", [])}
for s in after.get("scenarios", []):
    name = s["engine"]["name"]
    if name in bs:
        show(f"scenarios.{name}.wall_s", bs[name]["wall_s"], s["wall_s"])
PYEOF
  rm -f results/.scenarios_baseline.json
fi
exit $status
