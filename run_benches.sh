#!/bin/bash
# Runs every bench at full fidelity, teeing per-bench outputs into
# results/.  Honors LDKE_BENCH_TRIALS / LDKE_BENCH_NODES for quick runs.
cd "$(dirname "$0")"
mkdir -p results
status=0
for b in build/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  echo "=== $name ==="
  "$b" > "results/$name.txt" 2>&1
  rc=$?
  echo "exit=$rc ($name)"
  [ $rc -ne 0 ] && status=1
done
exit $status
