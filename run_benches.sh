#!/bin/bash
# Runs every bench at full fidelity from a dedicated *Release* build tree
# and records the outputs into results/.  Honors LDKE_BENCH_TRIALS /
# LDKE_BENCH_NODES for quick runs and LDKE_BENCH_BUILD_DIR to relocate
# the build tree (default: build-bench/).
#
# Numbers are only worth recording from an optimized build, so this
# script configures its own -DCMAKE_BUILD_TYPE=Release tree (the default
# build/ tree may be Debug, or carry an empty cached CMAKE_BUILD_TYPE
# from an old configure) and refuses to record otherwise.  The
# google-benchmark micro suites additionally emit machine-readable JSON
# (results/BENCH_crypto_micro.json, results/BENCH_sim_micro.json) for
# before/after diffing.
#
# Note: google-benchmark's "Library was built as DEBUG" console warning
# and the JSON's "library_build_type" field describe the *installed
# libbenchmark package* (Debian ships it debug-built), not our code, so
# they appear even from a Release tree.  The refusal below therefore
# keys on the one thing this script controls and that governs our own
# code's optimization: the build tree's cached CMAKE_BUILD_TYPE — every
# binary run here was just built from that tree.
set -u
cd "$(dirname "$0")" || exit 1

BUILD_DIR=${LDKE_BENCH_BUILD_DIR:-build-bench}

cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release > /dev/null || exit 1
cmake --build "$BUILD_DIR" -j"$(nproc)" || exit 1

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")
case "$build_type" in
  Release|RelWithDebInfo) ;;
  *)
    echo "refusing to record benches: $BUILD_DIR is '$build_type', not Release" >&2
    exit 1
    ;;
esac

mkdir -p results
status=0

# google-benchmark suites that also record JSON for before/after diffing.
declare -A json_out=(
  [bench_crypto_micro]=BENCH_crypto_micro.json
  [bench_sim_micro]=BENCH_sim_micro.json
)

for b in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  echo "=== $name ==="
  extra=()
  if [[ -v "json_out[$name]" ]]; then
    extra=(--benchmark_out="results/${json_out[$name]}"
           --benchmark_out_format=json)
  fi
  "$b" "${extra[@]}" > "results/$name.txt" 2>&1
  rc=$?
  echo "exit=$rc ($name)"
  [ $rc -ne 0 ] && status=1
done
exit $status
